//! The protocol abstraction shared by Tempo and every baseline (API v2).
//!
//! Each replication protocol is implemented as a *deterministic message-driven state
//! machine*: it consumes client submissions, peer messages and timer firings, and emits
//! typed [`Action`]s — messages to send, executed commands to deliver, and timers to
//! schedule. The same state machine is driven, unchanged, by the discrete-event simulator
//! (`tempo-sim`), the threaded cluster runtime (`tempo-runtime`) and the synchronous test
//! harness ([`crate::harness::LocalCluster`]) — mirroring the simulator/cluster/cloud
//! modes of the paper's evaluation framework (§6.1). All three are thin schedulers over
//! the shared [`crate::driver::Driver`] dispatch core.
//!
//! Following the paper's ordering/execution split (Algorithm 2), a protocol is two
//! cooperating stages:
//!
//! * the **ordering stage** implements [`Protocol`] — it decides *when* a command may
//!   execute (timestamp stability for Tempo, dependency graphs for Atlas/EPaxos/Janus*,
//!   log order for FPaxos, timestamp order for Caesar);
//! * the **execution stage** implements [`Executor`] — it owns the replicated key-value
//!   store and applies committed commands in the order the protocol decided.
//!
//! Executed commands are *pushed* to the embedding runtime through
//! [`Action::Deliver`]; there is no polling. Periodic work is *pulled into the protocol*:
//! each protocol schedules its own timers with [`Action::Schedule`] and reacts to them in
//! [`Protocol::timer`] — there is no global tick.

use crate::command::{Command, CommandResult};
use crate::config::Config;
use crate::id::{ProcessId, Rifl, ShardId, SiteId};
use crate::membership::Membership;
use std::collections::BTreeMap;
use std::fmt;

/// Estimated wire size of a message, consumed by the simulator's network/CPU cost model.
pub trait WireSize {
    /// Size of the message in bytes once serialized. The default is a small constant,
    /// appropriate for control messages that carry no command payload.
    fn wire_size(&self) -> usize {
        64
    }
}

/// Identifier of a protocol-owned timer.
///
/// Timer identities are defined by each protocol (e.g. Tempo's periodic promise
/// broadcast and its liveness scan); the runtime treats them as opaque. Timers are
/// one-shot: a protocol that wants periodic behaviour re-schedules the timer from its
/// [`Protocol::timer`] handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// An action requested by a protocol state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Send `msg` to every process in `to` (self-addressed messages are delivered
    /// immediately by the protocol itself, as assumed in Algorithm 1, so `to` only ever
    /// contains remote processes by the time an action reaches the runtime).
    Send {
        /// Destination processes.
        to: Vec<ProcessId>,
        /// The message.
        msg: M,
    },
    /// A command executed at this process, pushed to the embedding runtime in execution
    /// order (replaces the v1 `drain_executed` polling method).
    Deliver(Executed),
    /// Request a one-shot timer firing `after_us` microseconds from now; the runtime
    /// calls [`Protocol::timer`] with the same identifier once the delay elapses.
    Schedule {
        /// Protocol-defined timer identity passed back on firing.
        timer: TimerId,
        /// Delay until the firing, in microseconds (clamped to at least 1).
        after_us: u64,
    },
}

impl<M> Action<M> {
    /// Convenience constructor for a send action.
    pub fn send(to: Vec<ProcessId>, msg: M) -> Self {
        Action::Send { to, msg }
    }

    /// Convenience constructor for a send to a single process.
    pub fn send_one(to: ProcessId, msg: M) -> Self {
        Action::Send { to: vec![to], msg }
    }

    /// Convenience constructor for a timer request.
    pub fn schedule(timer: TimerId, after_us: u64) -> Self {
        Action::Schedule { timer, after_us }
    }
}

/// A command executed at one process (of one shard), reported in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executed {
    /// The request identifier of the executed command.
    pub rifl: Rifl,
    /// The partial result produced by this shard.
    pub result: CommandResult,
}

/// Counters exposed by every protocol, used by the benchmark harnesses and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolMetrics {
    /// Commands committed through the fast path at this process (coordinator side).
    pub fast_paths: u64,
    /// Commands committed through the slow path at this process (coordinator side).
    pub slow_paths: u64,
    /// Commands committed at this process (any role).
    pub committed: u64,
    /// Commands executed at this process.
    pub executed: u64,
    /// Recoveries started by this process (Algorithm 4 take-overs, counting ballot
    /// retries).
    pub recoveries_started: u64,
    /// Commands that committed at this process after it started a recovery for them —
    /// the count nemesis runs assert on to prove the recovery path actually fired.
    pub recoveries_completed: u64,
    /// Committed commands whose metadata was garbage collected at this process after
    /// every shard peer executed them (Tempo's executed-watermark GC; 0 for protocols
    /// without command GC). Accounted separately from `committed`/`executed` so GC does
    /// not perturb the cross-protocol comparison counters.
    pub gc_collected: u64,
    /// Point-to-point messages (counted per destination) that carried *only* GC
    /// watermarks — frontier-only `MPromises` sent when execution advanced but no
    /// promises were pending. A subset of `messages_sent`, kept separately so the
    /// seed-comparable message count is `messages_sent - gc_messages`.
    pub gc_messages: u64,
    /// Point-to-point messages produced by this process, counted per destination
    /// delivery: a `Send` to `k` remote peers counts as `k` messages, so simulator
    /// CPU-model accounting and the throughput-bench counters agree across protocols.
    /// Maintained uniformly by the [`crate::driver::Driver`]; protocols leave it at 0.
    pub messages_sent: u64,
    /// Write-ahead-log records appended to this process's durable store (0 for
    /// protocols without a store, or with a store that never wrote).
    pub wal_appends: u64,
    /// Bytes appended to the write-ahead log (frame overhead included).
    pub wal_bytes: u64,
    /// Durable snapshots installed by this process (each truncates its WAL).
    pub snapshots_taken: u64,
}

impl ProtocolMetrics {
    /// Fraction of coordinator-side commits that used the fast path.
    pub fn fast_path_ratio(&self) -> f64 {
        let total = self.fast_paths + self.slow_paths;
        if total == 0 {
            0.0
        } else {
            self.fast_paths as f64 / total as f64
        }
    }
}

/// The static view of the deployment handed to a protocol at start-up.
///
/// Besides membership, it carries — for each shard — the processes of that shard sorted by
/// ascending network distance from this process's site. Protocols use it to pick fast
/// quorums made of the closest replicas (as the paper's implementation does) and to find
/// the colocated replica of every other shard (the set `I^i_c`).
#[derive(Debug, Clone)]
pub struct View {
    /// The deployment configuration.
    pub config: Config,
    /// The process grid.
    pub membership: Membership,
    /// The site of the process owning this view.
    pub site: SiteId,
    /// For each shard, its processes sorted by ascending distance from `site` (the
    /// colocated process, if any, comes first).
    pub sorted_by_distance: BTreeMap<ShardId, Vec<ProcessId>>,
}

impl View {
    /// Builds a view in which distance is measured by site-identifier distance (useful for
    /// tests and for deployments without a geographic model).
    pub fn trivial(config: Config, process: ProcessId) -> Self {
        let membership = Membership::from_config(&config);
        let site = membership.site_of(process);
        let sites = membership.sites() as u64;
        let mut sorted_by_distance = BTreeMap::new();
        for shard in 0..membership.shards() as u64 {
            let mut processes = membership.processes_of_shard(shard);
            processes.sort_by_key(|p| {
                let s = membership.site_of(*p);
                // Ring distance between sites, colocated first.
                let d = (s + sites - site) % sites;
                (d, *p)
            });
            sorted_by_distance.insert(shard, processes);
        }
        Self {
            config,
            membership,
            site,
            sorted_by_distance,
        }
    }

    /// The processes of `shard` closest to this process, in ascending distance order.
    pub fn closest(&self, shard: ShardId) -> &[ProcessId] {
        self.sorted_by_distance
            .get(&shard)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The closest process of `shard` (the colocated one when the site hosts the shard).
    pub fn closest_process(&self, shard: ShardId) -> ProcessId {
        self.closest(shard)[0]
    }

    /// A fast quorum of `size` processes of `shard`, made of the closest replicas
    /// (including the colocated coordinator).
    pub fn fast_quorum(&self, shard: ShardId, size: usize) -> Vec<ProcessId> {
        let closest = self.closest(shard);
        assert!(
            size <= closest.len(),
            "fast quorum of {size} requested but shard {shard} has only {} replicas",
            closest.len()
        );
        closest[..size].to_vec()
    }

    /// All processes of `shard` (`I_p`).
    pub fn shard_processes(&self, shard: ShardId) -> Vec<ProcessId> {
        self.membership.processes_of_shard(shard)
    }

    /// For a command, the set `I^i_c`: one process per accessed shard, each the closest
    /// replica of that shard from this process's site.
    pub fn local_coordinators(&self, cmd: &Command) -> Vec<ProcessId> {
        cmd.shards().map(|s| self.closest_process(s)).collect()
    }

    /// For a command, the set `I_c`: every process replicating a shard the command
    /// accesses.
    pub fn all_replicas(&self, cmd: &Command) -> Vec<ProcessId> {
        let mut out = Vec::new();
        for shard in cmd.shards() {
            out.extend(self.shard_processes(shard));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The execution stage of a protocol: applies committed commands to the replicated
/// key-value store in the order decided by the ordering stage (the paper's
/// ordering/execution split, Algorithm 2).
///
/// Each protocol crate implements this trait for its own execution discipline —
/// timestamp stability (`TempoExecutor`), dependency graphs (`GraphExecutor`), log slots
/// (`SlotExecutor`) — which makes the stage independently testable: an executor can be
/// driven with hand-crafted [`Executor::Info`] events without running the commit
/// protocol at all.
pub trait Executor {
    /// Ordering metadata handed from the ordering stage to the executor (committed
    /// commands plus whatever the discipline needs: timestamps, dependencies, slots,
    /// stability watermarks).
    type Info: fmt::Debug;

    /// Creates the executor for `process`, replicating `shard`.
    fn new(process: ProcessId, shard: ShardId, config: Config) -> Self;

    /// Feeds one ordering event and returns the commands that became executable, in
    /// execution order.
    fn handle(&mut self, info: Self::Info) -> Vec<Executed>;

    /// Number of commands executed so far.
    fn executed(&self) -> u64;
}

/// A replication protocol instance running at one process (replica of one shard).
///
/// The trait covers the *ordering* stage only — [`submit`](Protocol::submit),
/// [`handle`](Protocol::handle) and [`timer`](Protocol::timer) — and communicates with
/// the outside world exclusively through the returned [`Action`]s. Execution is
/// delegated to the associated [`Executor`], whose output the protocol forwards as
/// [`Action::Deliver`].
pub trait Protocol: Sized {
    /// The wire messages exchanged between processes.
    type Message: Clone + fmt::Debug + WireSize;

    /// The execution stage used by this protocol.
    type Executor: Executor;

    /// Human-readable protocol name (used in reports: "Tempo", "Atlas", ...).
    const NAME: &'static str;

    /// Creates the protocol state machine for `process`, replicating `shard`.
    fn new(process: ProcessId, shard: ShardId, config: Config) -> Self;

    /// The identifier of this process.
    fn id(&self) -> ProcessId;

    /// The shard replicated by this process.
    fn shard(&self) -> ShardId;

    /// Provides the static deployment view; called once before any command is submitted.
    /// The returned actions are where a protocol schedules its initial timers.
    fn discover(&mut self, view: View) -> Vec<Action<Self::Message>>;

    /// Submits a client command at this process (which must replicate one of the shards
    /// the command accesses). Returns the actions to perform.
    fn submit(&mut self, cmd: Command, now_us: u64) -> Vec<Action<Self::Message>>;

    /// Handles a message from `from`. Returns the actions to perform.
    fn handle(
        &mut self,
        from: ProcessId,
        msg: Self::Message,
        now_us: u64,
    ) -> Vec<Action<Self::Message>>;

    /// Handles the firing of a timer previously requested with [`Action::Schedule`].
    /// Protocols with periodic behaviour (promise broadcast, liveness scans, recovery
    /// timeouts) re-schedule the timer here.
    fn timer(&mut self, timer: TimerId, now_us: u64) -> Vec<Action<Self::Message>>;

    /// Informs the protocol that `process` is suspected to have failed — the embedding
    /// runtime's stand-in for the Ω failure detector of the paper's Appendix B. Protocols
    /// without failure handling ignore it (the default).
    ///
    /// Suspicion is advisory, never load-bearing for safety: a wrong suspicion may only
    /// cost latency (Tempo, for instance, uses it to route new commands and fast
    /// quorums around the suspected process and to elect the recovery leader — the
    /// lowest *non-suspected* shard peer — but quorum intersection still provides
    /// correctness). There is no obligation to ever call this; a runtime with no
    /// failure detector simply leaves recovery to the protocol's own timeouts.
    fn suspect(&mut self, _process: ProcessId) {}

    /// Withdraws a suspicion raised with [`Protocol::suspect`] (e.g. the process
    /// restarted and rejoined). Ignored by default. After withdrawal the process is
    /// again eligible for fast quorums and coordination duties.
    fn unsuspect(&mut self, _process: ProcessId) {}

    /// Called once on a protocol instance rebuilt after a crash, with the 1-based
    /// restart count of this process. Protocols that support rejoining return the
    /// actions of their rejoin handshake (and must make their command identifiers
    /// disjoint from earlier incarnations — Tempo reserves the dot band
    /// `incarnation << 48`); the default — for protocols without restart support —
    /// returns no actions, which leaves the restarted replica as a best-effort
    /// participant.
    ///
    /// What "rebuilt" means depends on the backing store: a *diskless* instance starts
    /// blank and must treat its entire past as unknown (Tempo suspends proposals and
    /// consensus participation until its `MRejoin` handshake re-establishes a safe
    /// clock floor — see `DESIGN.md` §5), while an instance constructed around a
    /// durable store (e.g. `Tempo::with_store`) has already replayed its
    /// snapshot + WAL by the time `rejoin` runs, and the handshake only re-derives
    /// what durability cannot: the peers' promise prefixes and — via the
    /// snapshot/state-transfer exchange — the commands this replica missed while down
    /// (`DESIGN.md` §6). Volatile state (in-flight quorums, timers, suspicions) is
    /// lost in both cases.
    fn rejoin(&mut self, _incarnation: u64, _now_us: u64) -> Vec<Action<Self::Message>> {
        Vec::new()
    }

    /// Persistence hook, called by the [`crate::driver::Driver`] at the end of every
    /// dispatch step — after the protocol's actions were absorbed, *before* the step's
    /// outbound messages are handed to the scheduler's transport. A protocol with a
    /// durable store flushes it here (one batched `fsync` per step), which yields the
    /// write-ahead guarantee: no message leaves a process before the state that
    /// produced it is durable. The default (for in-memory protocols) is a no-op.
    fn persist(&mut self) {}

    /// Installs a [`Tracer`](crate::trace::Tracer) for per-command phase events
    /// (`PayloadDelivered`/`Proposed`/`Committed`/`Stable` and recovery markers —
    /// everything between the driver-emitted `Submitted` and `Executed`). Protocols
    /// without tracing hooks ignore it (the default), which merely yields a coarser
    /// trace; never required for correctness.
    fn attach_tracer(&mut self, _tracer: crate::trace::Tracer) {}

    /// Read access to the execution stage (diagnostics and tests).
    fn executor(&self) -> &Self::Executor;

    /// Protocol counters. `messages_sent` is maintained by the [`crate::driver::Driver`]
    /// (one count per destination process), not by the protocol itself.
    fn metrics(&self) -> ProtocolMetrics;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::KVOp;

    #[test]
    fn trivial_view_full_replication() {
        let config = Config::full(5, 1);
        let view = View::trivial(config, 2);
        assert_eq!(view.site, 2);
        // Closest process of shard 0 is the colocated one.
        assert_eq!(view.closest_process(0), 2);
        let fq = view.fast_quorum(0, config.fast_quorum_size());
        assert_eq!(fq.len(), 3);
        assert_eq!(fq[0], 2);
        assert_eq!(view.shard_processes(0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn trivial_view_partial_replication() {
        let config = Config::new(3, 1, 2);
        let view = View::trivial(config, 1); // shard 0, site 1
        let cmd = Command::new(
            Rifl::new(1, 1),
            vec![(0, 7, KVOp::Get), (1, 9, KVOp::Put(1))],
            0,
        );
        // Local coordinators: colocated processes of shards 0 and 1 at site 1.
        assert_eq!(view.local_coordinators(&cmd), vec![1, 4]);
        let all = view.all_replicas(&cmd);
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "fast quorum")]
    fn oversized_fast_quorum_panics() {
        let config = Config::full(3, 1);
        let view = View::trivial(config, 0);
        let _ = view.fast_quorum(0, 4);
    }

    #[test]
    fn metrics_fast_path_ratio() {
        let mut m = ProtocolMetrics::default();
        assert_eq!(m.fast_path_ratio(), 0.0);
        m.fast_paths = 3;
        m.slow_paths = 1;
        assert!((m.fast_path_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn action_constructors() {
        let a: Action<u32> = Action::send_one(3, 42);
        match a {
            Action::Send { to, msg } => {
                assert_eq!(to, vec![3]);
                assert_eq!(msg, 42);
            }
            other => panic!("expected a send action, got {other:?}"),
        }
        let s: Action<u32> = Action::schedule(TimerId(7), 5_000);
        assert_eq!(
            s,
            Action::Schedule {
                timer: TimerId(7),
                after_us: 5_000
            }
        );
    }
}
