//! Identifiers used throughout the workspace.
//!
//! The identifier scheme mirrors the deployment model of the paper (§2, §6.2): the system
//! is made of *sites* (geographic regions); each site hosts one *process* per *shard*
//! (partition group); clients are colocated with a site and attach to its processes.

use std::fmt;

/// Identifier of a process (a replica of one shard at one site).
pub type ProcessId = u64;

/// Identifier of a shard (a group of partitions replicated by `n` processes).
///
/// In the paper's terminology a *partition* can be as fine grained as a single key; a
/// *shard* is a set of partitions colocated on the same machines (§6.4). Protocol
/// instances run per shard.
pub type ShardId = u64;

/// Identifier of a site (a geographic region hosting one process per shard).
pub type SiteId = u64;

/// Identifier of a client.
pub type ClientId = u64;

/// A *r*equest *i*dentifier *f*or *l*inearizability: uniquely identifies a client command
/// end-to-end (client id + per-client sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rifl {
    /// The client that submitted the command.
    pub client: ClientId,
    /// The client-local sequence number of the command.
    pub seq: u64,
}

impl Rifl {
    /// Creates a new request identifier.
    pub fn new(client: ClientId, seq: u64) -> Self {
        Self { client, seq }
    }
}

impl fmt::Display for Rifl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// A command identifier: the pair of the process that coordinated the command and a
/// per-process sequence number (called a *dot* in the literature).
///
/// Dots are globally unique as long as every process uses its own `source`. They provide
/// the deterministic tie-break used when two commands are assigned the same timestamp
/// (Algorithm 2, line 52 orders by `⟨ts, id⟩`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dot {
    /// Process that created the identifier (the command's initial coordinator).
    pub source: ProcessId,
    /// Sequence number local to `source`, starting at 1.
    pub sequence: u64,
}

impl Dot {
    /// Creates a new dot.
    pub fn new(source: ProcessId, sequence: u64) -> Self {
        Self { source, sequence }
    }

    /// The process that generated this identifier (used as the initial coordinator during
    /// recovery: `initial_p(id)` in Algorithm 4).
    pub fn initial_coordinator(&self) -> ProcessId {
        self.source
    }
}

impl fmt::Display for Dot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.source, self.sequence)
    }
}

/// Generator of per-process [`Dot`]s.
#[derive(Debug, Clone)]
pub struct DotGen {
    source: ProcessId,
    next: u64,
}

impl DotGen {
    /// Creates a generator owned by process `source`.
    pub fn new(source: ProcessId) -> Self {
        Self { source, next: 0 }
    }

    /// Returns the next unique dot.
    pub fn next_id(&mut self) -> Dot {
        self.next += 1;
        Dot::new(self.source, self.next)
    }

    /// Fast-forwards the generator so that every future dot has a sequence strictly
    /// greater than `sequence`. Used by a process restarted with volatile state lost: its
    /// new incarnation must never reuse a dot of a previous incarnation, so it jumps to
    /// an incarnation-reserved band of the sequence space.
    pub fn skip_to(&mut self, sequence: u64) {
        self.next = self.next.max(sequence);
    }

    /// Number of dots generated so far.
    pub fn generated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rifl_ordering_is_by_client_then_seq() {
        let a = Rifl::new(1, 10);
        let b = Rifl::new(2, 1);
        let c = Rifl::new(1, 11);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn dot_gen_is_sequential_and_unique() {
        let mut gen = DotGen::new(7);
        let d1 = gen.next_id();
        let d2 = gen.next_id();
        assert_eq!(d1, Dot::new(7, 1));
        assert_eq!(d2, Dot::new(7, 2));
        assert_ne!(d1, d2);
        assert_eq!(gen.generated(), 2);
        assert_eq!(d1.initial_coordinator(), 7);
    }

    #[test]
    fn dot_display_and_rifl_display() {
        assert_eq!(Dot::new(3, 4).to_string(), "(3,4)");
        assert_eq!(Rifl::new(9, 2).to_string(), "9#2");
    }

    #[test]
    fn dot_ordering_breaks_ties_deterministically() {
        let mut dots = vec![Dot::new(2, 1), Dot::new(1, 2), Dot::new(1, 1)];
        dots.sort();
        assert_eq!(dots, vec![Dot::new(1, 1), Dot::new(1, 2), Dot::new(2, 1)]);
    }
}
