//! A minimal synchronous cluster harness used by protocol unit tests.
//!
//! [`LocalCluster`] instantiates one [`Driver`] per process of a deployment and routes
//! messages between them in FIFO order with no latency model. It is *not* the evaluation
//! runtime (see `tempo-sim` and `tempo-runtime` for those); it exists so that protocol
//! crates can unit-test commit/execution/recovery logic deterministically without pulling
//! in the simulator. All dispatch goes through the shared [`Driver`] core: the harness
//! only owns transport (a FIFO queue) and time (advanced by [`LocalCluster::tick_all`]).

use crate::command::Command;
use crate::config::Config;
use crate::driver::{Driver, Output};
use crate::id::ProcessId;
use crate::protocol::{Executed, Protocol, View};
use crate::rand::Rng;
use std::collections::{BTreeMap, VecDeque};

/// A message in flight between two processes.
#[derive(Debug, Clone)]
struct InFlight<M> {
    from: ProcessId,
    to: ProcessId,
    msg: M,
}

/// A synchronous cluster of protocol instances with FIFO message delivery.
pub struct LocalCluster<P: Protocol> {
    drivers: BTreeMap<ProcessId, Driver<P>>,
    queue: VecDeque<InFlight<P::Message>>,
    /// Commands executed at each process and not yet claimed via [`Self::executed`].
    completions: BTreeMap<ProcessId, Vec<Executed>>,
    /// Processes that have crashed: messages to and from them are dropped and their
    /// timers no longer fire.
    crashed: Vec<ProcessId>,
    /// Messages delivered so far (for assertions on message complexity).
    pub delivered: u64,
    /// Messages dropped by the lossy-transport mode (see [`Self::set_message_loss`]).
    pub dropped: u64,
    /// When set, each in-flight message is independently dropped with this probability.
    loss: Option<(f64, Rng)>,
    now_us: u64,
}

impl<P: Protocol> LocalCluster<P> {
    /// Creates a cluster with one protocol instance per process of `config`, using the
    /// trivial (ring-distance) view.
    pub fn new(config: Config) -> Self {
        Self::with_views(config, |process| View::trivial(config, process))
    }

    /// Creates a cluster using a custom view per process (e.g. one built from a planet).
    pub fn with_views(config: Config, view_for: impl FnMut(ProcessId) -> View) -> Self {
        Self::from_protocols(config, view_for, |id, shard| P::new(id, shard, config))
    }

    /// Creates a cluster from custom protocol instances (e.g. ones built with
    /// non-default options), wiring each into the shared driver core.
    pub fn from_protocols(
        config: Config,
        mut view_for: impl FnMut(ProcessId) -> View,
        mut make: impl FnMut(ProcessId, crate::id::ShardId) -> P,
    ) -> Self {
        let membership = crate::membership::Membership::from_config(&config);
        let mut cluster = Self {
            drivers: BTreeMap::new(),
            queue: VecDeque::new(),
            completions: BTreeMap::new(),
            crashed: Vec::new(),
            delivered: 0,
            dropped: 0,
            loss: None,
            now_us: 0,
        };
        for id in membership.all_processes() {
            let shard = membership.shard_of(id);
            let mut driver = Driver::from_protocol(make(id, shard));
            let output = driver.start(view_for(id), 0);
            cluster.drivers.insert(id, driver);
            cluster.absorb(id, output);
        }
        cluster
    }

    /// Current simulated time (advanced only by [`Self::tick_all`]).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Access a process (panics if unknown).
    pub fn process(&self, id: ProcessId) -> &P {
        self.drivers[&id].protocol()
    }

    /// Mutable access to a process (panics if unknown). Actions produced by direct
    /// protocol calls bypass the harness; use this for state inspection and injection.
    pub fn process_mut(&mut self, id: ProcessId) -> &mut P {
        self.drivers
            .get_mut(&id)
            .expect("unknown process")
            .protocol_mut()
    }

    /// The driver of a process (metrics with `messages_sent`, timer introspection).
    pub fn driver(&self, id: ProcessId) -> &Driver<P> {
        &self.drivers[&id]
    }

    /// All process identifiers.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        self.drivers.keys().copied().collect()
    }

    /// Turns on lossy transport: from now on every in-flight message is independently
    /// dropped with probability `p` (deterministically, from `seed`). Used by the
    /// message-loss conformance scenario to exercise retransmission paths.
    pub fn set_message_loss(&mut self, p: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.loss = Some((p, Rng::new(seed)));
    }

    /// Marks a process as crashed: it no longer receives nor sends messages.
    pub fn crash(&mut self, id: ProcessId) {
        if !self.crashed.contains(&id) {
            self.crashed.push(id);
        }
    }

    /// Whether a process has crashed.
    pub fn is_crashed(&self, id: ProcessId) -> bool {
        self.crashed.contains(&id)
    }

    fn absorb(&mut self, from: ProcessId, output: Output<P::Message>) {
        if self.crashed.contains(&from) {
            return;
        }
        for send in output.sends {
            for target in send.to {
                debug_assert_ne!(target, from, "protocols deliver self-sends internally");
                self.queue.push_back(InFlight {
                    from,
                    to: target,
                    msg: send.msg.clone(),
                });
            }
        }
        if !output.executed.is_empty() {
            self.completions
                .entry(from)
                .or_default()
                .extend(output.executed);
        }
    }

    /// Submits a command at `process` and delivers all resulting messages to quiescence.
    pub fn submit(&mut self, process: ProcessId, cmd: Command) {
        self.submit_no_deliver(process, cmd);
        self.run_to_quiescence();
    }

    /// Submits a command without running message delivery (for tests that interleave).
    pub fn submit_no_deliver(&mut self, process: ProcessId, cmd: Command) {
        let now = self.now_us;
        let output = self
            .drivers
            .get_mut(&process)
            .expect("unknown process")
            .submit(cmd, now);
        self.absorb(process, output);
    }

    /// Delivers a single in-flight message, if any. Returns whether one was delivered.
    pub fn step(&mut self) -> bool {
        while let Some(inflight) = self.queue.pop_front() {
            if self.crashed.contains(&inflight.to) || self.crashed.contains(&inflight.from) {
                continue;
            }
            if let Some((p, rng)) = &mut self.loss {
                if rng.gen_bool(*p) {
                    self.dropped += 1;
                    continue;
                }
            }
            let now = self.now_us;
            let output = self
                .drivers
                .get_mut(&inflight.to)
                .expect("unknown destination")
                .handle(inflight.from, inflight.msg, now);
            self.delivered += 1;
            self.absorb(inflight.to, output);
            return true;
        }
        false
    }

    /// Delivers messages until none are in flight.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Advances time by `advance_us`, fires every protocol timer that became due on every
    /// live process, and delivers all resulting messages.
    pub fn tick_all(&mut self, advance_us: u64) {
        self.now_us += advance_us;
        let ids = self.process_ids();
        for id in ids {
            if self.crashed.contains(&id) {
                continue;
            }
            let now = self.now_us;
            let output = self
                .drivers
                .get_mut(&id)
                .expect("unknown process")
                .fire_due(now);
            self.absorb(id, output);
        }
        self.run_to_quiescence();
    }

    /// Drains the commands executed at `process` since the last call, in execution order.
    pub fn executed(&mut self, process: ProcessId) -> Vec<Executed> {
        self.completions.remove(&process).unwrap_or_default()
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}
