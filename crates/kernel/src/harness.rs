//! A minimal synchronous cluster harness used by protocol unit tests.
//!
//! [`LocalCluster`] instantiates one protocol state machine per process of a deployment
//! and routes messages between them in FIFO order with no latency model. It is *not* the
//! evaluation runtime (see `tempo-sim` and `tempo-runtime` for those); it exists so that
//! protocol crates can unit-test commit/execution/recovery logic deterministically without
//! pulling in the simulator.

use crate::command::Command;
use crate::config::Config;
use crate::id::ProcessId;
use crate::protocol::{Action, Executed, Protocol, View};
use std::collections::{BTreeMap, VecDeque};

/// A message in flight between two processes.
#[derive(Debug, Clone)]
struct InFlight<M> {
    from: ProcessId,
    to: ProcessId,
    msg: M,
}

/// A synchronous cluster of protocol instances with FIFO message delivery.
pub struct LocalCluster<P: Protocol> {
    processes: BTreeMap<ProcessId, P>,
    queue: VecDeque<InFlight<P::Message>>,
    /// Processes that have crashed: messages to and from them are dropped.
    crashed: Vec<ProcessId>,
    /// Messages delivered so far (for assertions on message complexity).
    pub delivered: u64,
    now_us: u64,
}

impl<P: Protocol> LocalCluster<P> {
    /// Creates a cluster with one protocol instance per process of `config`, using the
    /// trivial (ring-distance) view.
    pub fn new(config: Config) -> Self {
        Self::with_views(config, |process| View::trivial(config, process))
    }

    /// Creates a cluster using a custom view per process (e.g. one built from a planet).
    pub fn with_views(config: Config, mut view_for: impl FnMut(ProcessId) -> View) -> Self {
        let membership = crate::membership::Membership::from_config(&config);
        let mut processes = BTreeMap::new();
        for id in membership.all_processes() {
            let shard = membership.shard_of(id);
            let mut p = P::new(id, shard, config);
            p.discover(view_for(id));
            processes.insert(id, p);
        }
        Self {
            processes,
            queue: VecDeque::new(),
            crashed: Vec::new(),
            delivered: 0,
            now_us: 0,
        }
    }

    /// Current simulated time (advanced only by [`Self::tick_all`]).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Access a process (panics if unknown).
    pub fn process(&self, id: ProcessId) -> &P {
        &self.processes[&id]
    }

    /// Mutable access to a process (panics if unknown).
    pub fn process_mut(&mut self, id: ProcessId) -> &mut P {
        self.processes.get_mut(&id).expect("unknown process")
    }

    /// All process identifiers.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        self.processes.keys().copied().collect()
    }

    /// Marks a process as crashed: it no longer receives nor sends messages.
    pub fn crash(&mut self, id: ProcessId) {
        if !self.crashed.contains(&id) {
            self.crashed.push(id);
        }
    }

    /// Whether a process has crashed.
    pub fn is_crashed(&self, id: ProcessId) -> bool {
        self.crashed.contains(&id)
    }

    fn enqueue(&mut self, from: ProcessId, actions: Vec<Action<P::Message>>) {
        if self.crashed.contains(&from) {
            return;
        }
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    for target in to {
                        if target == from {
                            // Protocols deliver self-addressed messages internally.
                            continue;
                        }
                        self.queue.push_back(InFlight {
                            from,
                            to: target,
                            msg: msg.clone(),
                        });
                    }
                }
            }
        }
    }

    /// Submits a command at `process` and delivers all resulting messages to quiescence.
    pub fn submit(&mut self, process: ProcessId, cmd: Command) {
        let actions = {
            let now = self.now_us;
            let p = self.process_mut(process);
            p.submit(cmd, now)
        };
        self.enqueue(process, actions);
        self.run_to_quiescence();
    }

    /// Submits a command without running message delivery (for tests that interleave).
    pub fn submit_no_deliver(&mut self, process: ProcessId, cmd: Command) {
        let actions = {
            let now = self.now_us;
            let p = self.process_mut(process);
            p.submit(cmd, now)
        };
        self.enqueue(process, actions);
    }

    /// Delivers a single in-flight message, if any. Returns whether one was delivered.
    pub fn step(&mut self) -> bool {
        while let Some(inflight) = self.queue.pop_front() {
            if self.crashed.contains(&inflight.to) || self.crashed.contains(&inflight.from) {
                continue;
            }
            let now = self.now_us;
            let actions = {
                let p = self
                    .processes
                    .get_mut(&inflight.to)
                    .expect("unknown destination");
                p.handle(inflight.from, inflight.msg, now)
            };
            self.delivered += 1;
            self.enqueue(inflight.to, actions);
            return true;
        }
        false
    }

    /// Delivers messages until none are in flight.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Calls `tick` on every live process (advancing time by `advance_us`) and delivers
    /// all resulting messages.
    pub fn tick_all(&mut self, advance_us: u64) {
        self.now_us += advance_us;
        let ids = self.process_ids();
        for id in ids {
            if self.crashed.contains(&id) {
                continue;
            }
            let now = self.now_us;
            let actions = {
                let p = self.processes.get_mut(&id).expect("unknown process");
                p.tick(now)
            };
            self.enqueue(id, actions);
        }
        self.run_to_quiescence();
    }

    /// Drains the commands executed at `process`.
    pub fn executed(&mut self, process: ProcessId) -> Vec<Executed> {
        self.process_mut(process).drain_executed()
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}
