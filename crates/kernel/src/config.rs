//! Replication configuration and quorum sizes.
//!
//! Following Flexible Paxos (and the paper, §2), the number of tolerated failures `f` is
//! decoupled from the replication factor `n`: any `1 ≤ f ≤ ⌊(n-1)/2⌋` is allowed. The
//! quorum sizes of the paper are:
//!
//! * fast quorum: `⌊n/2⌋ + f` (Tempo, Atlas, Janus*),
//! * slow / write quorum: `f + 1`,
//! * recovery quorum: `n - f`,
//! * majority (stability detection, Theorem 1): `⌊n/2⌋ + 1`,
//! * EPaxos fast quorum: `⌊3n/4⌋`, Caesar fast quorum: `⌈3n/4⌉` (§6).

/// Static configuration of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of processes replicating each shard (the replication factor `r`/`n`; equals
    /// the number of sites in the deployments of §6).
    n: usize,
    /// Number of tolerated process failures per shard.
    f: usize,
    /// Number of shards (1 = full replication).
    shards: usize,
}

impl Config {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`, `f < 1`, `f > ⌊(n-1)/2⌋` or `shards == 0`.
    pub fn new(n: usize, f: usize, shards: usize) -> Self {
        assert!(n >= 3, "need at least 3 processes per shard, got {n}");
        assert!(f >= 1, "f must be at least 1");
        assert!(
            f <= (n - 1) / 2,
            "f = {f} must be at most ⌊(n-1)/2⌋ = {}",
            (n - 1) / 2
        );
        assert!(shards >= 1, "need at least one shard");
        Self { n, f, shards }
    }

    /// Full-replication configuration (a single shard).
    pub fn full(n: usize, f: usize) -> Self {
        Self::new(n, f, 1)
    }

    /// The replication factor of each shard.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of tolerated failures per shard.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total number of processes in the deployment.
    pub fn total_processes(&self) -> usize {
        self.n * self.shards
    }

    /// Size of the fast quorum used by Tempo, Atlas and Janus*: `⌊n/2⌋ + f`.
    pub fn fast_quorum_size(&self) -> usize {
        self.n / 2 + self.f
    }

    /// Size of the slow (consensus write) quorum: `f + 1`.
    pub fn slow_quorum_size(&self) -> usize {
        self.f + 1
    }

    /// Size of the recovery quorum: `n - f`.
    pub fn recovery_quorum_size(&self) -> usize {
        self.n - self.f
    }

    /// A simple majority: `⌊n/2⌋ + 1`. Timestamp stability (Theorem 1) requires promises
    /// from this many processes.
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// Size of the EPaxos fast quorum: `⌊3n/4⌋` (§6, paragraph on compared protocols).
    pub fn epaxos_fast_quorum_size(&self) -> usize {
        (3 * self.n) / 4
    }

    /// Size of the Caesar fast quorum: `⌈3n/4⌉`.
    pub fn caesar_fast_quorum_size(&self) -> usize {
        (3 * self.n).div_ceil(4)
    }

    /// The index into a sorted array of per-process watermarks that yields the value
    /// guaranteed by a majority: `⌊n/2⌋` (Algorithm 2, line 51).
    pub fn stability_index(&self) -> usize {
        self.n / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes_match_paper_r5() {
        // r = 5, f = 1 (Table 1 c/d and §6).
        let c = Config::full(5, 1);
        assert_eq!(c.fast_quorum_size(), 3);
        assert_eq!(c.slow_quorum_size(), 2);
        assert_eq!(c.recovery_quorum_size(), 4);
        assert_eq!(c.majority(), 3);
        // r = 5, f = 2 (Table 1 a/b).
        let c = Config::full(5, 2);
        assert_eq!(c.fast_quorum_size(), 4);
        assert_eq!(c.slow_quorum_size(), 3);
        assert_eq!(c.recovery_quorum_size(), 3);
        assert_eq!(c.majority(), 3);
    }

    #[test]
    fn epaxos_caesar_quorums_r5() {
        let c = Config::full(5, 2);
        assert_eq!(c.epaxos_fast_quorum_size(), 3);
        assert_eq!(c.caesar_fast_quorum_size(), 4);
    }

    #[test]
    fn quorum_sizes_r3() {
        let c = Config::full(3, 1);
        assert_eq!(c.fast_quorum_size(), 2);
        assert_eq!(c.slow_quorum_size(), 2);
        assert_eq!(c.recovery_quorum_size(), 2);
        assert_eq!(c.majority(), 2);
        assert_eq!(c.stability_index(), 1);
    }

    #[test]
    fn quorum_sizes_r7() {
        let c = Config::full(7, 3);
        assert_eq!(c.fast_quorum_size(), 6);
        assert_eq!(c.slow_quorum_size(), 4);
        assert_eq!(c.recovery_quorum_size(), 4);
        assert_eq!(c.majority(), 4);
    }

    #[test]
    fn total_processes_scales_with_shards() {
        let c = Config::new(3, 1, 6);
        assert_eq!(c.total_processes(), 18);
        assert_eq!(c.shards(), 6);
    }

    #[test]
    #[should_panic(expected = "must be at most")]
    fn f_too_large_is_rejected() {
        let _ = Config::full(3, 2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_n_is_rejected() {
        let _ = Config::full(2, 1);
    }

    #[test]
    fn fast_quorum_never_exceeds_n_and_intersects_majority() {
        for n in 3..=11usize {
            for f in 1..=(n - 1) / 2 {
                let c = Config::full(n, f);
                assert!(c.fast_quorum_size() <= n);
                // Property 3 relies on |fast quorum| >= majority when excluding up to f-1
                // failures plus the coordinator; sanity-check the basic overlap.
                assert!(c.fast_quorum_size() >= c.majority());
                assert!(c.recovery_quorum_size() >= c.majority());
                // Recovery and fast quorums intersect in at least ⌊n/2⌋ processes.
                let intersection = c.fast_quorum_size() + c.recovery_quorum_size() - n;
                assert!(intersection >= n / 2);
            }
        }
    }
}
