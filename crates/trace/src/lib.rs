//! `tempo-trace` — post-run analysis of the lifecycle traces recorded by
//! [`tempo_kernel::trace`] (DESIGN.md §10).
//!
//! The kernel side is deliberately minimal (a ring buffer of `Copy` events); everything
//! that allocates or formats lives here, off the hot path:
//!
//! * [`PhaseBreakdown`] folds event pairs into per-phase [`LogHistogram`]s
//!   (submit→commit, commit→stable, stable→execute, execute→reply), turning "p99 is
//!   4.6 ms" into "3.9 ms of it is the stability wait";
//! * [`ChromeTrace`] renders a merged [`TraceLog`] as Chrome trace-event JSON
//!   (`chrome://tracing` / Perfetto-loadable): one track per process, a span per
//!   command lifecycle, nemesis/detector events overlaid as instants;
//! * [`MetricsRegistry`] holds named counter time series sampled periodically by the
//!   embedding scheduler (protocol counters, transport counters, detector stats), so
//!   saturation and fault windows are visible over time rather than as run totals.
//!
//! Everything here is deterministic given a deterministic input log: maps are B-trees,
//! events are processed in timestamp order, and no wall clock is consulted — a
//! simulator trace therefore renders byte-identically across same-seed runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use tempo_kernel::id::{ProcessId, Rifl};
use tempo_kernel::metrics::{LatencySummary, LogHistogram};
use tempo_kernel::trace::{CmdPhase, ProcEvent, TraceEvent, TraceLog};

/// All lifecycle phases, in causal order (indexes into [`PhaseBreakdown`]'s per-command
/// first-occurrence table).
const ALL_PHASES: [CmdPhase; 7] = [
    CmdPhase::Submitted,
    CmdPhase::PayloadDelivered,
    CmdPhase::Proposed,
    CmdPhase::Committed,
    CmdPhase::Stable,
    CmdPhase::Executed,
    CmdPhase::Replied,
];

fn phase_index(phase: CmdPhase) -> usize {
    ALL_PHASES
        .iter()
        .position(|p| *p == phase)
        .expect("every phase is listed")
}

/// The adjacent phase pairs folded into latency histograms, as
/// `(json-safe name, from, to)`.
pub const PHASE_PAIRS: [(&str, CmdPhase, CmdPhase); 5] = [
    ("submit_commit", CmdPhase::Submitted, CmdPhase::Committed),
    ("commit_stable", CmdPhase::Committed, CmdPhase::Stable),
    ("stable_execute", CmdPhase::Stable, CmdPhase::Executed),
    ("execute_reply", CmdPhase::Executed, CmdPhase::Replied),
    ("submit_reply", CmdPhase::Submitted, CmdPhase::Replied),
];

/// Folds trace logs into per-phase latency histograms.
///
/// For every command (keyed by [`Rifl`]) the *earliest* observation of each phase is
/// kept — phases like `Committed` happen at several processes; the first commit anywhere
/// is what gates client latency. Because the fold takes a minimum per `(rifl, phase)`,
/// the result is independent of the order per-process logs are merged in.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    firsts: BTreeMap<Rifl, [Option<u64>; ALL_PHASES.len()]>,
    dropped: u64,
}

impl PhaseBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one log's phase events in (process events are ignored here).
    pub fn record_log(&mut self, log: &TraceLog) {
        self.dropped += log.dropped;
        for event in &log.events {
            if let TraceEvent::Phase {
                at_us, rifl, phase, ..
            } = event
            {
                let slot = &mut self.firsts.entry(*rifl).or_default()[phase_index(*phase)];
                *slot = Some(slot.map_or(*at_us, |t| t.min(*at_us)));
            }
        }
    }

    /// Produces the per-phase histograms from everything folded so far.
    pub fn finish(&self) -> PhaseLatencies {
        let mut pairs: Vec<PhasePair> = PHASE_PAIRS
            .iter()
            .map(|(name, from, to)| PhasePair {
                name,
                from: *from,
                to: *to,
                histogram: LogHistogram::new(),
            })
            .collect();
        let mut complete = 0u64;
        for firsts in self.firsts.values() {
            let mut all = true;
            for pair in pairs.iter_mut() {
                match (firsts[phase_index(pair.from)], firsts[phase_index(pair.to)]) {
                    (Some(from), Some(to)) => pair.histogram.record(to.saturating_sub(from)),
                    _ => all = false,
                }
            }
            if all {
                complete += 1;
            }
        }
        PhaseLatencies {
            commands: self.firsts.len() as u64,
            complete,
            dropped: self.dropped,
            pairs,
        }
    }
}

/// One folded phase interval.
#[derive(Debug, Clone)]
pub struct PhasePair {
    /// JSON-safe interval name (e.g. `submit_commit`).
    pub name: &'static str,
    /// Start phase.
    pub from: CmdPhase,
    /// End phase.
    pub to: CmdPhase,
    /// Latencies of the interval across all commands that reached both phases.
    pub histogram: LogHistogram,
}

/// The result of a [`PhaseBreakdown`] fold.
#[derive(Debug, Clone)]
pub struct PhaseLatencies {
    /// Distinct commands observed in the logs.
    pub commands: u64,
    /// Commands for which every folded interval was observed.
    pub complete: u64,
    /// Ring-buffer overwrites across the folded logs (non-zero means the earliest
    /// events of a long run are missing).
    pub dropped: u64,
    /// One entry per [`PHASE_PAIRS`] interval, in that order.
    pub pairs: Vec<PhasePair>,
}

impl PhaseLatencies {
    /// The histogram of one interval by name, if it exists.
    pub fn pair(&self, name: &str) -> Option<&PhasePair> {
        self.pairs.iter().find(|p| p.name == name)
    }

    /// Per-interval summaries as `(name, summary)` (skipping empty intervals).
    pub fn summaries(&self) -> Vec<(&'static str, LatencySummary)> {
        self.pairs
            .iter()
            .filter(|p| !p.histogram.is_empty())
            .map(|p| (p.name, p.histogram.summary()))
            .collect()
    }

    /// A compact human-readable breakdown line, e.g.
    /// `phases: submit_commit p99=1.2ms | commit_stable p99=3.9ms | ...`.
    pub fn summary_line(&self) -> String {
        let mut line = String::from("phases:");
        for pair in &self.pairs {
            if pair.histogram.is_empty() {
                continue;
            }
            let s = pair.histogram.summary();
            let _ = write!(
                line,
                " {} mean={:.1}ms p99={:.1}ms |",
                pair.name, s.mean_ms, s.p99_ms
            );
        }
        if line.ends_with('|') {
            line.pop();
            line.pop();
        }
        if self.dropped > 0 {
            let _ = write!(line, " (dropped={})", self.dropped);
        }
        line
    }
}

// --------------------------------------------------------------------- JSON helpers

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

// ------------------------------------------------------------------ chrome export

/// Builds Chrome trace-event JSON (the `traceEvents` array format understood by
/// `chrome://tracing` and Perfetto) from merged [`TraceLog`]s.
///
/// Layout: a single trace process (`pid` 0) with one thread (track) per Tempo process;
/// each command lifecycle becomes a complete ("X") span on the track of the process
/// that observed its submission, phase observations and process-level events
/// (crash/restart/suspect/recovery) become instant ("i") events, and
/// [`MetricsRegistry`] series become counter ("C") events. Output is deterministic:
/// events are sorted by `(timestamp, track, kind)` and all grouping uses B-trees.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    log: TraceLog,
    names: BTreeMap<ProcessId, String>,
    counters: Vec<(String, Vec<(u64, u64)>)>,
}

impl ChromeTrace {
    /// Creates an empty export.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one drained log into the export.
    pub fn add_log(&mut self, log: TraceLog) {
        self.log.merge(log);
    }

    /// Labels a process's track (e.g. `replica 3 (eu-west-1)`); unlabelled tracks show
    /// as `process <id>`.
    pub fn name_process(&mut self, process: ProcessId, name: impl Into<String>) {
        self.names.insert(process, name.into());
    }

    /// Adds every series of a [`MetricsRegistry`] as counter tracks.
    pub fn add_registry(&mut self, registry: &MetricsRegistry) {
        for (name, samples) in registry.iter() {
            self.counters.push((name.to_string(), samples.to_vec()));
        }
    }

    /// Renders the export. The result is a complete JSON document:
    /// `{"traceEvents": [...]}`.
    pub fn render(&self) -> String {
        let mut log = self.log.clone();
        log.sort_by_time();

        // Collect per-command phase observations (earliest per phase) to build spans.
        let mut breakdown = PhaseBreakdown::new();
        breakdown.record_log(&log);

        let mut events: Vec<String> = Vec::new();

        // Track-name metadata, one per process seen in the log (sorted by id).
        let mut tracks: BTreeMap<ProcessId, ()> = BTreeMap::new();
        for event in &log.events {
            tracks.insert(event.process(), ());
        }
        for process in tracks.keys() {
            let mut name = String::new();
            match self.names.get(process) {
                Some(label) => escape_json(label, &mut name),
                None => {
                    let _ = write!(name, "process {process}");
                }
            }
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{process},\"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }

        // Command lifecycle spans: submitted → replied (or the last phase observed).
        for (rifl, firsts) in &breakdown.firsts {
            let Some(start) = firsts[phase_index(CmdPhase::Submitted)] else {
                continue;
            };
            let end = firsts
                .iter()
                .flatten()
                .copied()
                .max()
                .expect("submitted is present");
            // The span lives on the submitting process's track.
            let tid = log
                .events
                .iter()
                .find_map(|e| match e {
                    TraceEvent::Phase {
                        process,
                        rifl: r,
                        phase: CmdPhase::Submitted,
                        ..
                    } if r == rifl => Some(*process),
                    _ => None,
                })
                .unwrap_or(0);
            events.push(format!(
                "{{\"name\":\"cmd c{}#{}\",\"cat\":\"cmd\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{start},\"dur\":{}}}",
                rifl.client,
                rifl.seq,
                end.saturating_sub(start).max(1)
            ));
        }

        // Phase observations and process-level events as instants.
        for event in &log.events {
            match event {
                TraceEvent::Phase {
                    at_us,
                    process,
                    rifl,
                    phase,
                } => {
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{process},\"ts\":{at_us},\"args\":{{\"cmd\":\"c{}#{}\"}}}}",
                        phase.name(),
                        rifl.client,
                        rifl.seq
                    ));
                }
                TraceEvent::Process {
                    at_us,
                    process,
                    event,
                } => {
                    let subject = match event {
                        ProcEvent::Suspect(p)
                        | ProcEvent::Unsuspect(p)
                        | ProcEvent::Crash(p)
                        | ProcEvent::Restart(p) => Some(*p),
                        _ => None,
                    };
                    let args = match subject {
                        Some(p) => format!("{{\"subject\":{p}}}"),
                        None => String::from("{}"),
                    };
                    events.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":{process},\"ts\":{at_us},\"args\":{args}}}",
                        event.name()
                    ));
                }
            }
        }

        // Counter tracks from the registry.
        for (name, samples) in &self.counters {
            let mut escaped = String::new();
            escape_json(name, &mut escaped);
            for (at_us, value) in samples {
                events.push(format!(
                    "{{\"name\":\"{escaped}\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":0,\"ts\":{at_us},\"args\":{{\"value\":{value}}}}}"
                ));
            }
        }

        let mut out = String::from("{\"traceEvents\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(event);
        }
        out.push_str("\n]}\n");
        out
    }
}

// --------------------------------------------------------------- metrics registry

/// Named counter time series, periodically sampled by the embedding scheduler.
///
/// The registry itself is passive: the scheduler calls [`MetricsRegistry::sample`] at
/// whatever cadence it owns (a simulated-time event in `tempo-sim`, the supervisor tick
/// in `tempo-runtime`) with the counters it wants tracked — protocol counters, transport
/// counters, detector stats, store counters. Series and sample order are deterministic
/// (B-tree keyed by name, samples appended in call order).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    series: BTreeMap<String, Vec<(u64, u64)>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one `(at_us, value)` sample to the named series (creating it on first
    /// use).
    pub fn sample(&mut self, name: &str, at_us: u64, value: u64) {
        match self.series.get_mut(name) {
            Some(samples) => samples.push((at_us, value)),
            None => {
                self.series.insert(name.to_string(), vec![(at_us, value)]);
            }
        }
    }

    /// Appends samples for several series at the same instant.
    pub fn sample_all<'a>(&mut self, at_us: u64, values: impl IntoIterator<Item = (&'a str, u64)>) {
        for (name, value) in values {
            self.sample(name, at_us, value);
        }
    }

    /// The samples of one series, oldest first (empty if the series does not exist).
    pub fn series(&self, name: &str) -> &[(u64, u64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates `(name, samples)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(u64, u64)])> {
        self.series.iter().map(|(n, s)| (n.as_str(), s.as_slice()))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series was ever sampled.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Merges another registry into this one (series with the same name are
    /// concatenated then re-sorted by time).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, samples) in &other.series {
            let mine = self.series.entry(name.clone()).or_default();
            mine.extend_from_slice(samples);
            mine.sort_by_key(|(at, _)| *at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_kernel::trace::Tracer;

    fn phase(at_us: u64, process: ProcessId, rifl: Rifl, phase: CmdPhase) -> TraceEvent {
        TraceEvent::Phase {
            at_us,
            process,
            rifl,
            phase,
        }
    }

    fn full_lifecycle(rifl: Rifl, base_us: u64) -> Vec<TraceEvent> {
        vec![
            phase(base_us, 0, rifl, CmdPhase::Submitted),
            phase(base_us + 100, 1, rifl, CmdPhase::PayloadDelivered),
            phase(base_us + 150, 1, rifl, CmdPhase::Proposed),
            phase(base_us + 300, 0, rifl, CmdPhase::Committed),
            phase(base_us + 700, 0, rifl, CmdPhase::Stable),
            phase(base_us + 750, 0, rifl, CmdPhase::Executed),
            phase(base_us + 800, 0, rifl, CmdPhase::Replied),
        ]
    }

    #[test]
    fn breakdown_folds_phase_pairs() {
        let log = TraceLog {
            events: full_lifecycle(Rifl::new(1, 1), 1_000),
            ..TraceLog::default()
        };
        let mut breakdown = PhaseBreakdown::new();
        breakdown.record_log(&log);
        let lat = breakdown.finish();
        assert_eq!(lat.commands, 1);
        assert_eq!(lat.complete, 1);
        assert_eq!(lat.dropped, 0);
        let commit = lat.pair("submit_commit").unwrap();
        assert_eq!(commit.histogram.len(), 1);
        assert_eq!(commit.histogram.max_us(), 300);
        assert_eq!(lat.pair("commit_stable").unwrap().histogram.max_us(), 400);
        assert_eq!(lat.pair("stable_execute").unwrap().histogram.max_us(), 50);
        assert_eq!(lat.pair("execute_reply").unwrap().histogram.max_us(), 50);
        assert_eq!(lat.pair("submit_reply").unwrap().histogram.max_us(), 800);
        assert!(lat.summary_line().contains("submit_commit"));
    }

    #[test]
    fn breakdown_takes_earliest_observation_per_phase() {
        let rifl = Rifl::new(1, 1);
        let log = TraceLog {
            events: vec![
                phase(0, 0, rifl, CmdPhase::Submitted),
                // Commit observed at three processes; the earliest (250) counts.
                phase(400, 2, rifl, CmdPhase::Committed),
                phase(250, 0, rifl, CmdPhase::Committed),
                phase(900, 1, rifl, CmdPhase::Committed),
            ],
            ..TraceLog::default()
        };
        let mut breakdown = PhaseBreakdown::new();
        breakdown.record_log(&log);
        let lat = breakdown.finish();
        assert_eq!(lat.pair("submit_commit").unwrap().histogram.max_us(), 250);
        // No stable/executed/replied events: the chain is incomplete.
        assert_eq!(lat.complete, 0);
        assert!(lat.pair("commit_stable").unwrap().histogram.is_empty());
    }

    #[test]
    fn breakdown_is_merge_order_independent() {
        let rifl = Rifl::new(3, 9);
        let events = full_lifecycle(rifl, 5_000);
        let mut forward = PhaseBreakdown::new();
        let mut backward = PhaseBreakdown::new();
        let log_fwd = TraceLog {
            events: events.clone(),
            ..TraceLog::default()
        };
        let log_bwd = TraceLog {
            events: events.into_iter().rev().collect(),
            ..TraceLog::default()
        };
        forward.record_log(&log_fwd);
        backward.record_log(&log_bwd);
        let a = forward.finish();
        let b = backward.finish();
        for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(pa.histogram.max_us(), pb.histogram.max_us());
        }
    }

    #[test]
    fn chrome_trace_renders_spans_instants_and_counters() {
        let tracer = Tracer::with_capacity(64);
        for event in full_lifecycle(Rifl::new(7, 1), 100) {
            tracer.record(event);
        }
        tracer.process_event(500, 2, ProcEvent::Crash(2));
        tracer.process_event(600, 0, ProcEvent::Suspect(2));

        let mut registry = MetricsRegistry::new();
        registry.sample("committed", 100, 0);
        registry.sample("committed", 200, 1);

        let mut export = ChromeTrace::new();
        export.add_log(tracer.take());
        export.name_process(0, "replica 0 (eu-west-1)");
        export.add_registry(&registry);
        let json = export.render();

        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""), "lifecycle span present");
        assert!(json.contains("cmd c7#1"));
        assert!(json.contains("\"name\":\"crash\""));
        assert!(json.contains("\"name\":\"suspect\""));
        assert!(json.contains("\"ph\":\"C\""), "counter events present");
        assert!(json.contains("replica 0 (eu-west-1)"));
        // Deterministic: rendering twice yields identical bytes.
        assert_eq!(json, export.render());
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        // A paren/quote balance check catches malformed hand-rolled JSON without a
        // parser dependency.
        let tracer = Tracer::with_capacity(16);
        for event in full_lifecycle(Rifl::new(1, 2), 0) {
            tracer.record(event);
        }
        let mut export = ChromeTrace::new();
        export.add_log(tracer.take());
        let json = export.render();
        let mut depth = 0i64;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_string);
    }

    #[test]
    fn registry_series_and_merge() {
        let mut a = MetricsRegistry::new();
        a.sample_all(10, [("x", 1), ("y", 5)]);
        a.sample("x", 20, 2);
        assert_eq!(a.series("x"), &[(10, 1), (20, 2)]);
        assert_eq!(a.series("missing"), &[] as &[(u64, u64)]);
        assert_eq!(a.len(), 2);

        let mut b = MetricsRegistry::new();
        b.sample("x", 15, 9);
        a.merge(&b);
        assert_eq!(a.series("x"), &[(10, 1), (15, 9), (20, 2)]);
    }
}
