//! A timeout-based (accrual-style) failure detector.
//!
//! The paper assumes the Ω leader oracle of classic indulgent consensus (Appendix B);
//! PRs 3–6 approximated it with a *perfect* oracle — the simulator and the `NetCluster`
//! supervisor told every live replica exactly when a peer crashed or rejoined. That
//! hides an entire failure class: real detectors are driven by heartbeats over the same
//! lossy, delayed network the protocol runs on, so they suspect slow-but-alive peers
//! (gray failures) and un-suspect them later. Wrong suspicions trigger concurrent
//! recovery attempts and hammer the `MRecNAck` ballot races of Algorithm 4 — which is
//! exactly what this module exists to provoke.
//!
//! [`FailureDetector`] is deterministic and clock-free: the embedder feeds it absolute
//! microsecond timestamps (simulated time in `tempo-sim`, a monotonic epoch in the
//! networked runtime) plus heartbeat arrivals, and polls [`FailureDetector::tick`] for
//! [`DetectorEvent`]s. Per peer it keeps an exponentially weighted moving average of
//! heartbeat inter-arrival times, in the spirit of the φ accrual detector (Hayashibara
//! et al.): a peer is suspected once its silence exceeds
//! `clamp(multiplier · mean_interarrival, min_timeout_us, max_timeout_us)` and
//! un-suspected the moment any frame from it arrives. The clamp matters at both ends —
//! the floor keeps one delayed heartbeat from triggering a suspicion storm at startup,
//! and the ceiling keeps a persistently slow node (the `SlowNode` nemesis action, 100×
//! latency) from stretching the average until it passes as healthy.
//!
//! Suspicion here is advisory, as everywhere in this codebase: it accelerates recovery
//! and leader choice but is never load-bearing for safety (DESIGN.md §9).

use std::collections::BTreeMap;
use tempo_kernel::id::ProcessId;

/// Tuning knobs of the [`FailureDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorOpts {
    /// How often each process broadcasts a heartbeat (and how often the embedder
    /// should call [`FailureDetector::tick`]), in microseconds. Also seeds the
    /// inter-arrival estimate before the first real heartbeat lands.
    pub heartbeat_interval_us: u64,
    /// A peer is suspected once its silence exceeds `multiplier` times its estimated
    /// heartbeat inter-arrival (subject to the clamps below). Higher values trade
    /// detection latency for fewer wrong suspicions.
    pub multiplier: f64,
    /// Floor on the suspicion timeout: protects against suspicion storms while the
    /// inter-arrival estimate is still warming up.
    pub min_timeout_us: u64,
    /// Ceiling on the suspicion timeout: keeps a persistently slow peer from
    /// stretching its own estimate until it passes as healthy.
    pub max_timeout_us: u64,
    /// EWMA weight of the newest inter-arrival sample (0 < α ≤ 1).
    pub alpha: f64,
}

impl Default for DetectorOpts {
    fn default() -> Self {
        Self {
            heartbeat_interval_us: 25_000,
            multiplier: 6.0,
            min_timeout_us: 100_000,
            max_timeout_us: 2_000_000,
            alpha: 0.2,
        }
    }
}

impl DetectorOpts {
    /// The suspicion timeout implied by an inter-arrival estimate.
    fn timeout_us(&self, mean_us: f64) -> u64 {
        let raw = (self.multiplier * mean_us) as u64;
        raw.clamp(self.min_timeout_us, self.max_timeout_us)
    }
}

/// A suspicion change emitted by [`FailureDetector::tick`] or
/// [`FailureDetector::heartbeat`]. The embedder forwards these to
/// `Protocol::suspect` / `Protocol::unsuspect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorEvent {
    /// The peer has been silent past its timeout: presume it failed.
    Suspect(ProcessId),
    /// A frame from a suspected peer arrived: the suspicion was wrong (or the peer
    /// recovered); retract it.
    Unsuspect(ProcessId),
}

/// Counters of detector activity, for run reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Total `Suspect` events emitted.
    pub suspicions: u64,
    /// Total `Unsuspect` events emitted — each one is a *wrong* (or stale) suspicion
    /// that the protocol had to absorb.
    pub wrong_suspicions: u64,
    /// Heartbeat arrivals observed.
    pub heartbeats: u64,
}

impl DetectorStats {
    /// Folds another detector's counters into this one (aggregation across replicas
    /// and incarnations for run reports).
    pub fn merge(&mut self, other: &DetectorStats) {
        self.suspicions += other.suspicions;
        self.wrong_suspicions += other.wrong_suspicions;
        self.heartbeats += other.heartbeats;
    }
}

#[derive(Debug, Clone)]
struct PeerState {
    /// Absolute time of the most recent arrival (seeded with the construction time).
    last_us: u64,
    /// EWMA of heartbeat inter-arrival times.
    mean_us: f64,
    suspected: bool,
}

/// Per-replica, heartbeat-fed failure detector (see the module docs).
#[derive(Debug, Clone)]
pub struct FailureDetector {
    opts: DetectorOpts,
    peers: BTreeMap<ProcessId, PeerState>,
    stats: DetectorStats,
}

impl FailureDetector {
    /// Creates a detector watching `peers` (the local process must not be listed).
    /// `now_us` counts as a synthetic first arrival from every peer, so detection
    /// latency is bounded from the start — a peer that never says anything is
    /// suspected after one timeout, not never.
    pub fn new(
        opts: DetectorOpts,
        peers: impl IntoIterator<Item = ProcessId>,
        now_us: u64,
    ) -> Self {
        let seed_mean = opts.heartbeat_interval_us as f64;
        let peers = peers
            .into_iter()
            .map(|p| {
                (
                    p,
                    PeerState {
                        last_us: now_us,
                        mean_us: seed_mean,
                        suspected: false,
                    },
                )
            })
            .collect();
        Self {
            opts,
            peers,
            stats: DetectorStats::default(),
        }
    }

    /// The options the detector was built with.
    pub fn opts(&self) -> &DetectorOpts {
        &self.opts
    }

    /// Records a liveness proof from `from` at `now_us` — a heartbeat, or *any* frame
    /// (every message a peer sends proves it is alive, so embedders feed all arrivals
    /// through here). Returns the `Unsuspect` event if the peer was suspected.
    pub fn heartbeat(&mut self, from: ProcessId, now_us: u64) -> Option<DetectorEvent> {
        let peer = self.peers.get_mut(&from)?;
        self.stats.heartbeats += 1;
        let interval = now_us.saturating_sub(peer.last_us) as f64;
        peer.last_us = now_us;
        peer.mean_us = peer.mean_us * (1.0 - self.opts.alpha) + interval * self.opts.alpha;
        if peer.suspected {
            peer.suspected = false;
            self.stats.wrong_suspicions += 1;
            Some(DetectorEvent::Unsuspect(from))
        } else {
            None
        }
    }

    /// Scans every peer at `now_us` and returns the fresh `Suspect` events. Idempotent
    /// per suspicion: a peer already suspected is not re-reported.
    pub fn tick(&mut self, now_us: u64) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        for (&p, peer) in self.peers.iter_mut() {
            if peer.suspected {
                continue;
            }
            let silence = now_us.saturating_sub(peer.last_us);
            if silence > self.opts.timeout_us(peer.mean_us) {
                peer.suspected = true;
                self.stats.suspicions += 1;
                events.push(DetectorEvent::Suspect(p));
            }
        }
        events
    }

    /// The earliest absolute time at which [`tick`](Self::tick) could emit a new
    /// suspicion, if any peer is still unsuspected. Embedders with timer wheels can
    /// sleep until `min(next_deadline, ...)` instead of polling blindly.
    pub fn next_deadline(&self) -> Option<u64> {
        self.peers
            .values()
            .filter(|peer| !peer.suspected)
            .map(|peer| peer.last_us + self.opts.timeout_us(peer.mean_us) + 1)
            .min()
    }

    /// Whether `p` is currently suspected.
    pub fn is_suspected(&self, p: ProcessId) -> bool {
        self.peers.get(&p).is_some_and(|peer| peer.suspected)
    }

    /// The currently suspected peers, ascending.
    pub fn suspected(&self) -> Vec<ProcessId> {
        self.peers
            .iter()
            .filter(|(_, peer)| peer.suspected)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Resets `p`'s arrival state (e.g. when the embedder restarts a peer and wants to
    /// grant it a fresh grace period without waiting for its first heartbeat).
    pub fn reset_peer(&mut self, p: ProcessId, now_us: u64) -> Option<DetectorEvent> {
        let seed_mean = self.opts.heartbeat_interval_us as f64;
        let peer = self.peers.get_mut(&p)?;
        peer.last_us = now_us;
        peer.mean_us = seed_mean;
        if peer.suspected {
            peer.suspected = false;
            self.stats.wrong_suspicions += 1;
            Some(DetectorEvent::Unsuspect(p))
        } else {
            None
        }
    }

    /// Activity counters so far.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_kernel::rand::Rng;

    fn opts() -> DetectorOpts {
        DetectorOpts {
            heartbeat_interval_us: 10_000,
            multiplier: 5.0,
            min_timeout_us: 30_000,
            max_timeout_us: 500_000,
            alpha: 0.2,
        }
    }

    /// Detection latency is bounded: a peer that goes silent at T is suspected no
    /// earlier than T + min_timeout and no later than T + max_timeout (+ one tick).
    #[test]
    fn detection_latency_bounds() {
        let o = opts();
        let mut d = FailureDetector::new(o, [1, 2], 0);
        // Healthy heartbeats from both peers every interval until 100ms.
        let mut t = 0;
        while t < 100_000 {
            t += o.heartbeat_interval_us;
            assert_eq!(d.heartbeat(1, t), None);
            assert_eq!(d.heartbeat(2, t), None);
            assert!(d.tick(t).is_empty(), "healthy peers never suspected");
        }
        let crash_at = t;
        // Peer 1 goes silent; peer 2 keeps beating. Scan every millisecond.
        let mut suspected_at = None;
        while t < crash_at + o.max_timeout_us + 1_000 {
            t += 1_000;
            if t % o.heartbeat_interval_us == 0 {
                d.heartbeat(2, t);
            }
            for e in d.tick(t) {
                assert_eq!(e, DetectorEvent::Suspect(1), "only the silent peer");
                suspected_at = Some(t);
            }
            if suspected_at.is_some() {
                break;
            }
        }
        let at = suspected_at.expect("silent peer must be suspected");
        let latency = at - crash_at;
        assert!(latency > o.min_timeout_us, "latency {latency} below floor");
        assert!(
            latency <= o.max_timeout_us + 1_000,
            "latency {latency} above ceiling"
        );
        // With a warmed-up 10ms estimate the timeout should sit near 5×10ms.
        assert!(
            (40_000..=80_000).contains(&latency),
            "latency {latency} far from multiplier × interval"
        );
        assert!(d.is_suspected(1));
        assert!(!d.is_suspected(2));
        assert_eq!(d.suspected(), vec![1]);
    }

    /// A wrong suspicion (long delay, not a crash) is retracted by the next arrival.
    #[test]
    fn wrong_suspicion_then_unsuspect() {
        let o = opts();
        let mut d = FailureDetector::new(o, [1], 0);
        for t in (0..=50_000).step_by(10_000) {
            d.heartbeat(1, t);
        }
        // A 100ms stall: suspected...
        let events = d.tick(150_000);
        assert_eq!(events, vec![DetectorEvent::Suspect(1)]);
        assert!(d.tick(160_000).is_empty(), "no duplicate suspicion");
        // ...then the delayed heartbeat lands and retracts it.
        assert_eq!(d.heartbeat(1, 170_000), Some(DetectorEvent::Unsuspect(1)));
        assert!(!d.is_suspected(1));
        let stats = d.stats();
        assert_eq!(stats.suspicions, 1);
        assert_eq!(stats.wrong_suspicions, 1);
        // And the estimate absorbed the spike, so the next scan stays quiet.
        assert!(d.tick(200_000).is_empty());
    }

    /// A slow node (heartbeats at 100× latency ⇒ huge silent gaps) is eventually
    /// suspected and — thanks to the timeout ceiling — *stays* suspect even as its
    /// inter-arrival estimate stretches, while a merely lossy link (each heartbeat
    /// dropped with p = 0.2) never trips the detector.
    #[test]
    fn slow_node_suspected_lossy_link_is_not() {
        let o = opts();
        let mut d = FailureDetector::new(o, [1, 2], 0);
        let mut rng = Rng::new(9);
        let slow_interval = o.heartbeat_interval_us * 100; // 1s between arrivals
        let mut slow_suspected = 0u32;
        let mut t = 0;
        while t < 10_000_000 {
            t += o.heartbeat_interval_us;
            // Peer 1 is slow: its heartbeat arrives only every 100 intervals.
            if t % slow_interval == 0 {
                d.heartbeat(1, t);
            }
            // Peer 2 sits behind a lossy link: 20% of heartbeats vanish.
            if !rng.gen_bool(0.2) {
                d.heartbeat(2, t);
            }
            for e in d.tick(t) {
                match e {
                    DetectorEvent::Suspect(1) => slow_suspected += 1,
                    DetectorEvent::Suspect(p) => panic!("lossy peer {p} wrongly suspected"),
                    DetectorEvent::Unsuspect(_) => {}
                }
            }
        }
        assert!(slow_suspected > 0, "slow node never suspected");
        // The ceiling (500ms) is below the slow node's 1s arrival gap, so it is
        // re-suspected after every arrival: roughly once per gap over the run.
        assert!(
            slow_suspected >= 5,
            "slow node should flap into suspicion repeatedly, got {slow_suspected}"
        );
        assert!(!d.is_suspected(2), "lossy peer must end unsuspected");
    }

    /// A peer that never sends anything at all is still suspected (the construction
    /// time seeds its arrival state), and `next_deadline` brackets the scan time.
    #[test]
    fn silent_from_birth_and_deadline() {
        let o = opts();
        let mut d = FailureDetector::new(o, [7], 0);
        let deadline = d.next_deadline().expect("one unsuspected peer");
        assert!(d.tick(deadline - 1).is_empty(), "not before the deadline");
        assert_eq!(d.tick(deadline), vec![DetectorEvent::Suspect(7)]);
        assert_eq!(d.next_deadline(), None, "every peer suspected");
        // A restart grant resets the grace period.
        assert_eq!(d.reset_peer(7, deadline), Some(DetectorEvent::Unsuspect(7)));
        assert!(d.next_deadline().is_some());
    }

    /// Unknown peers are ignored — clients and control frames must not distort state.
    #[test]
    fn unknown_peer_is_ignored() {
        let mut d = FailureDetector::new(opts(), [1], 0);
        assert_eq!(d.heartbeat(99, 1_000), None);
        assert_eq!(d.stats().heartbeats, 0);
    }
}
