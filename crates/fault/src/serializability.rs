//! Cross-key strict serializability via a commit-order constraint graph.
//!
//! The per-key pass in [`crate::history`] projects every command onto its keys and
//! checks each register independently — sound for single-key commands, blind to
//! cross-key anomalies (write skew, fractured reads, per-shard orders that disagree
//! about one multi-key command). This module treats every *command* as an atomic
//! transaction and asks whether one serial order over all of them explains every
//! observation and respects real time. The serial order is never enumerated; instead
//! the checker collects the constraints any such order would have to satisfy and looks
//! for a cycle:
//!
//! * **read-from** — a transaction that observed value `v` on a key must come after
//!   the unique writer whose final value on that key is `v` (skipped when several
//!   writers produced `v`: the mapping is ambiguous and an edge would be unsound);
//! * **initial-read** — a transaction that observed the key as *absent* must come
//!   before every writer of that key (keys are never deleted, so absence pins the
//!   transaction to the pre-write prefix of the order);
//! * **overwrite** — a transaction that entered a key at state `v` must come before
//!   any *other* writer that also entered at `v`: in a serial order the state `v`
//!   exists as one contiguous interval and a writer entering at `v` ends it (two
//!   writers both claiming entry `v` get mutual edges — the lost-update cycle);
//! * **real-time (per key)** — if `a` completed before `b` was invoked and both touch
//!   some key, `a` precedes `b` (strict serializability; the per-key scope is a
//!   deliberate limit, see DESIGN.md §11);
//! * **program order** — one client submits serially, so its own commands are chained
//!   by the same completed-before-invoked rule across *all* keys.
//!
//! Real-time and program constraints are materialized through per-group *barrier
//! chains* (one auxiliary node per completed transaction) so a group of `n`
//! transactions costs `O(n)` edges instead of `O(n²)`. Pending and aborted
//! transactions receive ordering edges but never source them — their effects may land
//! arbitrarily late, so "completed before" never applies to them — yet their
//! deterministic writes (`Put`) still source read-from edges: observing such a value
//! proves the write executed.
//!
//! The graph is built deterministically (BTree grouping, index-sorted adjacency), so
//! the same history always yields the same verdict and, on failure, the same reported
//! cycle: Tarjan's SCC finds a strongly connected component, and a BFS inside it
//! returns a *minimal* cycle (fewest constraint hops, ties broken by lowest
//! transaction index) with the offending operations and edge kinds attached.

use std::collections::BTreeMap;
use std::fmt;
use tempo_kernel::command::Key;
use tempo_kernel::id::{ClientId, Rifl, ShardId};

/// What a transaction observed about one register's state when it first touched it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Entry {
    /// Nothing observable: a blind write, or a pending/aborted command whose outputs
    /// were never seen.
    Unknown,
    /// The key was absent (a `Get` returned `None`).
    Initial,
    /// An `Add` returned its own delta, so the pre-state was either `0` or absent —
    /// indistinguishable, and therefore never used for edges.
    ZeroOrInitial,
    /// The register held this value.
    Value(u64),
}

/// One transaction's footprint on one `(shard, key)` register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyAccess {
    /// The shard owning the key.
    pub shard: ShardId,
    /// The key.
    pub key: Key,
    /// Whether the transaction writes the register (`Put`/`Add`).
    pub writes: bool,
    /// Observed (or derived) register state when the transaction first touched the key.
    pub entry: Entry,
    /// The value the register held after the transaction's last op on it, when known
    /// (`None` for reads, and for writes whose final value cannot be derived — e.g. a
    /// pending `Add`).
    pub exit: Option<u64>,
}

/// A client command viewed as an atomic multi-key transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// The command's request identifier.
    pub rifl: Rifl,
    /// Invocation time at the client.
    pub inv_us: u64,
    /// Completion time at the client; `None` for pending/aborted commands.
    pub res_us: Option<u64>,
    /// One access per distinct `(shard, key)` touched, in key order.
    pub accesses: Vec<KeyAccess>,
}

/// The kind of ordering constraint an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// `to` observed the value `from` wrote on the key.
    ReadFrom {
        /// The shard owning the key.
        shard: ShardId,
        /// The key whose value was observed.
        key: Key,
    },
    /// `from` observed the key as absent, so it precedes the writer `to`.
    InitialRead {
        /// The shard owning the key.
        shard: ShardId,
        /// The key observed absent.
        key: Key,
    },
    /// `from` entered the key at the state that the writer `to` consumed.
    Overwrite {
        /// The shard owning the key.
        shard: ShardId,
        /// The contended key.
        key: Key,
    },
    /// `from` completed before `to` was invoked and both touch the key.
    RealTime {
        /// The shard owning the key.
        shard: ShardId,
        /// The key both transactions touch.
        key: Key,
    },
    /// Same client: `from` completed before the client invoked `to`.
    Program {
        /// The client whose submission order the edge encodes.
        client: ClientId,
    },
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::ReadFrom { shard, key } => write!(f, "read-from {shard}/{key}"),
            EdgeKind::InitialRead { shard, key } => write!(f, "initial-read {shard}/{key}"),
            EdgeKind::Overwrite { shard, key } => write!(f, "overwrite {shard}/{key}"),
            EdgeKind::RealTime { shard, key } => write!(f, "real-time {shard}/{key}"),
            EdgeKind::Program { client } => write!(f, "program-order client {client}"),
        }
    }
}

/// One edge of a reported anomalous cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEdge {
    /// The transaction the constraint orders first.
    pub from: Rifl,
    /// The transaction the constraint orders second.
    pub to: Rifl,
    /// Why `from` must precede `to`.
    pub kind: EdgeKind,
}

impl fmt::Display for CycleEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -[{}]-> {}", self.from, self.kind, self.to)
    }
}

/// What a passing serializability check covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerSummary {
    /// Transactions in the constraint graph.
    pub txns: u64,
    /// Constraint edges (after barrier-chain compression).
    pub edges: u64,
}

/// Node indices `0..txns.len()` are transactions; the rest are barrier nodes.
struct Graph {
    adj: Vec<Vec<(usize, EdgeKind)>>,
    /// `kind` of the chain each barrier node belongs to (indexed from `txn_count`).
    barrier_kind: Vec<EdgeKind>,
    txn_count: usize,
    edges: u64,
}

impl Graph {
    fn new(txn_count: usize) -> Self {
        Self {
            adj: vec![Vec::new(); txn_count],
            barrier_kind: Vec::new(),
            txn_count,
            edges: 0,
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        debug_assert_ne!(from, to, "constraint edges are never self-loops");
        if !self.adj[from].contains(&(to, kind)) {
            self.adj[from].push((to, kind));
            self.edges += 1;
        }
    }

    fn add_barrier(&mut self, kind: EdgeKind) -> usize {
        let id = self.adj.len();
        self.adj.push(Vec::new());
        self.barrier_kind.push(kind);
        id
    }

    /// Adds the real-time edges of one group (transactions sharing a key, or a
    /// client's transactions) as a barrier chain: one auxiliary node per completed
    /// member, in completion order, each preceding every member invoked after it.
    /// Linear in the group size where naive pairwise edges are quadratic.
    fn add_barrier_chain(&mut self, members: &[(usize, u64, Option<u64>)], kind: EdgeKind) {
        // (node, res_us) of completed members, in (completion, node) order.
        let mut completed: Vec<(usize, u64)> = members
            .iter()
            .filter_map(|&(node, _, res)| res.map(|r| (node, r)))
            .collect();
        completed.sort_by_key(|&(node, res)| (res, node));
        if completed.is_empty() {
            return;
        }
        let barriers: Vec<usize> = completed.iter().map(|_| self.add_barrier(kind)).collect();
        for (i, &(node, _)) in completed.iter().enumerate() {
            self.add_edge(node, barriers[i], kind);
            if i + 1 < barriers.len() {
                self.add_edge(barriers[i], barriers[i + 1], kind);
            }
        }
        for &(node, inv, _) in members {
            // Members strictly invoked after the i-th completion are ordered after it.
            let preceding = completed.partition_point(|&(_, res)| res < inv);
            if preceding > 0 {
                self.add_edge(barriers[preceding - 1], node, kind);
            }
        }
    }
}

/// Checks strict serializability of `txns`; returns coverage counts, or a minimal
/// anomalous cycle.
pub fn check(txns: &[Txn]) -> Result<SerSummary, Vec<CycleEdge>> {
    let mut graph = Graph::new(txns.len());

    // Group accesses per register, and transactions per client.
    let mut per_key: BTreeMap<(ShardId, Key), Vec<(usize, &KeyAccess)>> = BTreeMap::new();
    let mut per_client: BTreeMap<ClientId, Vec<(usize, u64, Option<u64>)>> = BTreeMap::new();
    for (i, txn) in txns.iter().enumerate() {
        for acc in &txn.accesses {
            per_key
                .entry((acc.shard, acc.key))
                .or_default()
                .push((i, acc));
        }
        per_client
            .entry(txn.rifl.client)
            .or_default()
            .push((i, txn.inv_us, txn.res_us));
    }

    for (&(shard, key), group) in &per_key {
        let writers: Vec<(usize, &KeyAccess)> =
            group.iter().filter(|(_, a)| a.writes).copied().collect();
        let mut writers_by_exit: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for &(i, acc) in &writers {
            if let Some(v) = acc.exit {
                writers_by_exit.entry(v).or_default().push(i);
            }
        }
        for &(i, acc) in group {
            match acc.entry {
                Entry::Value(v) => {
                    if let Some(ws) = writers_by_exit.get(&v) {
                        // Unique-writer rule: with several candidate writers of `v`
                        // the mapping is ambiguous, and a wrong edge could convict a
                        // correct run — skip.
                        if let [w] = ws[..] {
                            if w != i {
                                graph.add_edge(w, i, EdgeKind::ReadFrom { shard, key });
                            }
                        }
                    }
                    for &(w, wacc) in &writers {
                        if w != i && wacc.entry == Entry::Value(v) {
                            graph.add_edge(i, w, EdgeKind::Overwrite { shard, key });
                        }
                    }
                }
                Entry::Initial => {
                    for &(w, _) in &writers {
                        if w != i {
                            graph.add_edge(i, w, EdgeKind::InitialRead { shard, key });
                        }
                    }
                }
                // `ZeroOrInitial` could be a genuine `Some(0)` written by a `Put(0)`,
                // so neither the initial-read nor the read-from rule applies safely.
                Entry::ZeroOrInitial | Entry::Unknown => {}
            }
        }
        let members: Vec<(usize, u64, Option<u64>)> = group
            .iter()
            .map(|&(i, _)| (i, txns[i].inv_us, txns[i].res_us))
            .collect();
        graph.add_barrier_chain(&members, EdgeKind::RealTime { shard, key });
    }

    for (&client, members) in &per_client {
        graph.add_barrier_chain(members, EdgeKind::Program { client });
    }

    // Deterministic adjacency order for the SCC walk and the BFS below.
    for list in &mut graph.adj {
        list.sort();
    }

    match find_cycle(&graph, txns) {
        None => Ok(SerSummary {
            txns: txns.len() as u64,
            edges: graph.edges,
        }),
        Some(cycle) => Err(cycle),
    }
}

/// Finds the minimal cycle (fewest hops; ties broken by lowest starting transaction)
/// across all non-trivial strongly connected components, reported with barrier chains
/// collapsed back into single edges between transactions.
fn find_cycle(graph: &Graph, txns: &[Txn]) -> Option<Vec<CycleEdge>> {
    let comp = scc_ids(&graph.adj);
    let n = graph.adj.len();
    // Component sizes; a cycle exists iff some component has >= 2 nodes (the graph
    // has no self-loops by construction).
    let mut size = vec![0usize; n];
    for &c in &comp {
        size[c] += 1;
    }
    let mut best: Option<Vec<usize>> = None;
    for start in 0..graph.txn_count {
        if size[comp[start]] < 2 {
            continue;
        }
        if let Some(path) = shortest_cycle_from(graph, &comp, start) {
            if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                best = Some(path);
            }
        }
    }
    let path = best?;
    // Walk the node path (start, ..., start), collapsing barrier nodes: every barrier
    // run sits between two transactions and carries a single kind by construction.
    let mut cycle = Vec::new();
    let mut from = path[0];
    let mut kind: Option<EdgeKind> = None;
    for window in path.windows(2) {
        let (a, b) = (window[0], window[1]);
        let edge_kind = graph.adj[a]
            .iter()
            .find(|(to, _)| *to == b)
            .map(|(_, k)| *k)
            .expect("path follows existing edges");
        if kind.is_none() {
            kind = Some(edge_kind);
        }
        if b < graph.txn_count {
            cycle.push(CycleEdge {
                from: txns[from].rifl,
                to: txns[b].rifl,
                kind: kind.take().expect("a hop always has a kind"),
            });
            from = b;
        }
    }
    Some(cycle)
}

/// BFS from `start` within its component; returns the node path of the shortest cycle
/// through `start` (first and last element are `start`), or `None` if `start` cannot
/// reach itself.
fn shortest_cycle_from(graph: &Graph, comp: &[usize], start: usize) -> Option<Vec<usize>> {
    let n = graph.adj.len();
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &(w, _) in &graph.adj[v] {
            if comp[w] != comp[start] {
                continue;
            }
            if w == start {
                let mut path = vec![start, v];
                let mut cur = v;
                while cur != start {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if parent[w] == usize::MAX && w != start {
                parent[w] = v;
                queue.push_back(w);
            }
        }
    }
    None
}

/// Iterative Tarjan: maps every node to a component id.
fn scc_ids(adj: &[Vec<(usize, EdgeKind)>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        while let Some(frame) = call.last_mut() {
            let (v, cursor) = (frame.0, frame.1);
            if cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < adj[v].len() {
                frame.1 += 1;
                let w = adj[v][cursor].0;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack holds the component");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(rifl: Rifl, inv: u64, res: Option<u64>, accesses: Vec<KeyAccess>) -> Txn {
        Txn {
            rifl,
            inv_us: inv,
            res_us: res,
            accesses,
        }
    }

    fn read(key: Key, entry: Entry) -> KeyAccess {
        KeyAccess {
            shard: 0,
            key,
            writes: false,
            entry,
            exit: None,
        }
    }

    fn write(key: Key, entry: Entry, exit: u64) -> KeyAccess {
        KeyAccess {
            shard: 0,
            key,
            writes: true,
            entry,
            exit: Some(exit),
        }
    }

    #[test]
    fn empty_and_serial_histories_pass() {
        assert!(check(&[]).is_ok());
        let t1 = txn(
            Rifl::new(1, 1),
            0,
            Some(10),
            vec![write(1, Entry::Unknown, 5), write(2, Entry::Unknown, 5)],
        );
        let t2 = txn(
            Rifl::new(1, 2),
            20,
            Some(30),
            vec![read(1, Entry::Value(5)), read(2, Entry::Value(5))],
        );
        let summary = check(&[t1, t2]).expect("serial history");
        assert_eq!(summary.txns, 2);
        assert!(summary.edges > 0);
    }

    #[test]
    fn write_skew_is_a_cycle() {
        // T1 reads x absent, writes y; T2 reads y absent, writes x — both claim to
        // precede the other's write.
        let t1 = txn(
            Rifl::new(1, 1),
            0,
            Some(100),
            vec![read(1, Entry::Initial), write(2, Entry::Unknown, 7)],
        );
        let t2 = txn(
            Rifl::new(2, 1),
            0,
            Some(100),
            vec![read(2, Entry::Initial), write(1, Entry::Unknown, 7)],
        );
        let cycle = check(&[t1, t2]).expect_err("write skew");
        assert_eq!(cycle.len(), 2);
        assert!(cycle
            .iter()
            .all(|e| matches!(e.kind, EdgeKind::InitialRead { .. })));
    }

    #[test]
    fn barrier_chain_orders_disjoint_writers_via_reader() {
        // w1 completes, then r starts, reads the initial state of w1's key: stale.
        let w1 = txn(
            Rifl::new(1, 1),
            0,
            Some(10),
            vec![write(1, Entry::Unknown, 3)],
        );
        let r = txn(Rifl::new(2, 1), 20, Some(30), vec![read(1, Entry::Initial)]);
        let cycle = check(&[w1, r]).expect_err("stale initial read");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn pending_writers_source_no_realtime_edges() {
        // A pending write observed by a later reader: fine (it executed sometime).
        let w = txn(Rifl::new(1, 1), 0, None, vec![write(1, Entry::Unknown, 3)]);
        let r = txn(
            Rifl::new(2, 1),
            50,
            Some(60),
            vec![read(1, Entry::Value(3))],
        );
        assert!(check(&[w, r]).is_ok());
    }
}
