//! Concurrent histories and the safety checker nemesis runs are judged by.
//!
//! The simulator records three things while it runs: client *invocations* (command +
//! submit time), client *responses* (completion time + the per-key outputs the client
//! observed) or *aborts* (the client gave up; the command may or may not have taken
//! effect), and the per-replica *execution sequences* (which commands each replica
//! incarnation applied, in order). [`History::check`] then verifies, in the spirit of
//! BesFS's mechanically-checked properties:
//!
//! 1. **At-most-once execution** — no replica incarnation executes the same `Rifl`
//!    twice (a restarted replica is a fresh incarnation: it lost its store and may
//!    legitimately re-execute).
//! 2. **Replica agreement** — for every shard, any two replica incarnations that both
//!    executed a pair of *conflicting* commands executed them in the same order (the
//!    paper's Property 1/2: conflicting commands execute in timestamp order, and
//!    committed timestamps agree across replicas). Conflicting means sharing a key on
//!    which at least one of the pair writes: read-read pairs commute, and
//!    dependency-based protocols execute them in replica-local order by design.
//! 3. **Per-key linearizability** — for every `(shard, key)`, the completed client
//!    operations form a linearizable history of a register supporting `Get`/`Put`/`Add`
//!    (with `Add` returning the new value, i.e. a read-modify-write). Aborted and
//!    pending commands are linearized optionally (they may or may not have taken
//!    effect), per the standard treatment of crashed operations.
//!
//! 4. **Cross-key strict serializability** — when the history contains multi-key
//!    commands, every command is additionally treated as an atomic transaction and run
//!    through the commit-order constraint graph of [`crate::serializability`], which
//!    catches what per-key projection cannot (write skew, fractured reads, lost
//!    updates) and reports the minimal anomalous cycle. Histories with only
//!    single-key commands skip this pass entirely: the per-key checks above are the
//!    fast path and remain exactly as cheap as before.
//!
//! The linearizability check is a Wing & Gong search with memoization on
//! `(linearized-set, register state)`; keys with more than [`MAX_LIN_OPS`] operations
//! are skipped and *reported* in the [`CheckSummary`] — never silently.

use crate::serializability::{self, CycleEdge, Entry, KeyAccess, Txn};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use tempo_kernel::command::{Command, KVOp, Key};
use tempo_kernel::id::{ProcessId, Rifl, ShardId};

/// Maximum operations per key the linearizability search will attempt (the memoization
/// mask is a `u128`). Keys beyond it are counted in [`CheckSummary::keys_skipped`].
pub const MAX_LIN_OPS: usize = 128;

/// The outcome of one client command.
/// Per-op outputs observed at the client, as `(shard, key, output)` in per-shard
/// op order.
pub type OpOutputs = Vec<(ShardId, Key, Option<u64>)>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    /// No response recorded (still in flight when the run ended).
    Pending,
    /// The client observed a response with the given per-key outputs.
    Completed { at_us: u64, outputs: OpOutputs },
    /// The client timed out and gave up; the command may or may not have taken effect.
    Aborted,
}

#[derive(Debug, Clone)]
struct Invocation {
    cmd: Command,
    invoked_us: u64,
    outcome: Outcome,
}

/// A per-replica-incarnation execution log.
#[derive(Debug, Clone, Default)]
struct ExecutionLog {
    order: Vec<Rifl>,
}

/// A recorded concurrent history of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct History {
    invocations: BTreeMap<Rifl, Invocation>,
    /// Keyed by `(shard, process, incarnation)`: a restarted process is a fresh
    /// observer with a fresh (empty) store.
    executions: BTreeMap<(ShardId, ProcessId, u64), ExecutionLog>,
}

/// A safety violation found by [`History::check`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A replica incarnation executed the same request twice.
    DuplicateExecution {
        /// The shard of the offending replica.
        shard: ShardId,
        /// The offending replica.
        process: ProcessId,
        /// Its incarnation (0 = never restarted).
        incarnation: u64,
        /// The request executed twice.
        rifl: Rifl,
    },
    /// Two replicas of a shard executed a pair of conflicting commands in opposite
    /// orders.
    OrderDivergence {
        /// The shard on which the commands conflict.
        shard: ShardId,
        /// First replica (process, incarnation).
        a: (ProcessId, u64),
        /// Second replica (process, incarnation).
        b: (ProcessId, u64),
        /// The conflicting pair: `a` executed `first` before `second`, `b` the reverse.
        first: Rifl,
        /// See `first`.
        second: Rifl,
    },
    /// A key's completed operations admit no linearization.
    NotLinearizable {
        /// The shard owning the key.
        shard: ShardId,
        /// The key.
        key: Key,
        /// Number of operations on the key.
        ops: usize,
    },
    /// The multi-key history admits no serial order: the commit-order constraint
    /// graph has a cycle.
    NotSerializable {
        /// The minimal anomalous cycle found, in order around the cycle.
        cycle: Vec<CycleEdge>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateExecution { shard, process, incarnation, rifl } => write!(
                f,
                "replica {process} (shard {shard}, incarnation {incarnation}) executed {rifl} twice"
            ),
            Violation::OrderDivergence { shard, a, b, first, second } => write!(
                f,
                "shard {shard}: replica {}#{} executed {first} before {second}, replica {}#{} the reverse",
                a.0, a.1, b.0, b.1
            ),
            Violation::NotLinearizable { shard, key, ops } => write!(
                f,
                "key {key} of shard {shard}: no linearization of its {ops} operations exists"
            ),
            Violation::NotSerializable { cycle } => {
                write!(f, "not strictly serializable; anomalous cycle:")?;
                for edge in cycle {
                    write!(f, " {edge}")?;
                }
                Ok(())
            }
        }
    }
}

/// What a passing [`History::check`] covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Client commands invoked.
    pub commands: u64,
    /// Commands with a recorded response.
    pub completed: u64,
    /// Commands the client aborted.
    pub aborted: u64,
    /// Replica-incarnation execution logs compared.
    pub replicas: u64,
    /// `(shard, key)` spaces linearizability-checked.
    pub keys_checked: u64,
    /// `(shard, key)` spaces skipped because they exceed [`MAX_LIN_OPS`].
    pub keys_skipped: u64,
    /// Commands touching more than one `(shard, key)` register. Zero means the
    /// serializability graph was skipped entirely (the per-key fast path).
    pub multi_key_commands: u64,
    /// Transactions in the serializability constraint graph (0 when skipped).
    pub ser_txns: u64,
    /// Edges in the serializability constraint graph (0 when skipped).
    pub ser_edges: u64,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client submitting `cmd` at `at_us`.
    pub fn record_invoke(&mut self, rifl: Rifl, cmd: Command, at_us: u64) {
        self.invocations.insert(
            rifl,
            Invocation {
                cmd,
                invoked_us: at_us,
                outcome: Outcome::Pending,
            },
        );
    }

    /// Records the client response for `rifl`: completion time and the per-key outputs
    /// observed at the client's site (`(shard, key, output)` in per-shard op order).
    pub fn record_complete(&mut self, rifl: Rifl, at_us: u64, outputs: OpOutputs) {
        if let Some(inv) = self.invocations.get_mut(&rifl) {
            inv.outcome = Outcome::Completed { at_us, outputs };
        }
    }

    /// Records that the client gave up on `rifl` (timeout); the command may still take
    /// effect later.
    pub fn record_abort(&mut self, rifl: Rifl) {
        if let Some(inv) = self.invocations.get_mut(&rifl) {
            if inv.outcome == Outcome::Pending {
                inv.outcome = Outcome::Aborted;
            }
        }
    }

    /// Records that replica `process` (of `shard`, in its `incarnation`-th life)
    /// executed `rifl` as its next command.
    pub fn record_execution(
        &mut self,
        shard: ShardId,
        process: ProcessId,
        incarnation: u64,
        rifl: Rifl,
    ) {
        self.executions
            .entry((shard, process, incarnation))
            .or_default()
            .order
            .push(rifl);
    }

    /// Number of invocations recorded.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// The requests executed by `process` across all its incarnations, in order (used
    /// by tests asserting that survivors executed a recovered command).
    pub fn executed_by(&self, process: ProcessId) -> Vec<Rifl> {
        self.executions
            .iter()
            .filter(|((_, p, _), _)| *p == process)
            .flat_map(|(_, log)| log.order.iter().copied())
            .collect()
    }

    /// The requests executed by one specific incarnation of `process`, in order (used
    /// by tests asserting that a *restarted* replica executes again — the
    /// all-incarnations view above would be satisfied by pre-crash executions alone).
    pub fn executed_by_incarnation(&self, process: ProcessId, incarnation: u64) -> Vec<Rifl> {
        self.executions
            .iter()
            .filter(|((_, p, i), _)| *p == process && *i == incarnation)
            .flat_map(|(_, log)| log.order.iter().copied())
            .collect()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Runs all checks; returns what was covered, or the first violation found.
    pub fn check(&self) -> Result<CheckSummary, Violation> {
        let mut summary = CheckSummary {
            commands: self.invocations.len() as u64,
            completed: self
                .invocations
                .values()
                .filter(|i| matches!(i.outcome, Outcome::Completed { .. }))
                .count() as u64,
            aborted: self
                .invocations
                .values()
                .filter(|i| i.outcome == Outcome::Aborted)
                .count() as u64,
            replicas: self.executions.len() as u64,
            ..CheckSummary::default()
        };
        self.check_at_most_once()?;
        self.check_replica_agreement()?;
        summary.multi_key_commands = self
            .invocations
            .values()
            .filter(|inv| inv.cmd.keys().collect::<BTreeSet<_>>().len() > 1)
            .count() as u64;
        // The per-key pass always runs: it is the fast pre-filter, and single-key
        // histories stop here (the graph below costs them nothing). When multi-key
        // commands are present, the graph runs even if the per-key pass failed — a
        // per-key violation over multi-key commands usually *is* a cross-key cycle,
        // and the cycle names the culprits where `NotLinearizable` only counts ops.
        let lin = self.check_linearizability(&mut summary);
        if summary.multi_key_commands > 0 {
            match serializability::check(&self.transactions()) {
                Ok(ser) => {
                    summary.ser_txns = ser.txns;
                    summary.ser_edges = ser.edges;
                }
                Err(cycle) => return Err(Violation::NotSerializable { cycle }),
            }
        }
        lin?;
        Ok(summary)
    }

    /// The history viewed as atomic multi-key transactions: per `(shard, key)` access
    /// footprints with observed entry/exit values, derived from the client-visible
    /// outputs (see [`key_accesses`] for the derivation rules).
    pub fn transactions(&self) -> Vec<Txn> {
        self.invocations
            .iter()
            .map(|(rifl, inv)| {
                let (res_us, outputs) = match &inv.outcome {
                    Outcome::Completed { at_us, outputs } => (Some(*at_us), Some(outputs)),
                    _ => (None, None),
                };
                Txn {
                    rifl: *rifl,
                    inv_us: inv.invoked_us,
                    res_us,
                    accesses: key_accesses(&inv.cmd, outputs),
                }
            })
            .collect()
    }

    fn check_at_most_once(&self) -> Result<(), Violation> {
        for ((shard, process, incarnation), log) in &self.executions {
            let mut seen = BTreeSet::new();
            for rifl in &log.order {
                if !seen.insert(*rifl) {
                    return Err(Violation::DuplicateExecution {
                        shard: *shard,
                        process: *process,
                        incarnation: *incarnation,
                        rifl: *rifl,
                    });
                }
            }
        }
        Ok(())
    }

    /// Keys a command touches on `shard` (empty for commands we never saw invoked —
    /// possible only if execution recording outlives invocation recording, which the
    /// simulator does not do).
    fn keys_on(&self, rifl: Rifl, shard: ShardId) -> BTreeSet<Key> {
        self.invocations
            .get(&rifl)
            .map(|inv| inv.cmd.keys_of(shard).collect())
            .unwrap_or_default()
    }

    /// Keys a command *writes* on `shard` (`Put`/`Add`; `Get`s are excluded).
    fn write_keys_on(&self, rifl: Rifl, shard: ShardId) -> BTreeSet<Key> {
        self.invocations
            .get(&rifl)
            .map(|inv| {
                inv.cmd
                    .ops_of(shard)
                    .iter()
                    .filter(|(_, op)| !matches!(op, KVOp::Get))
                    .map(|(key, _)| *key)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn check_replica_agreement(&self) -> Result<(), Violation> {
        type ShardLogs<'a> = Vec<(&'a (ShardId, ProcessId, u64), &'a ExecutionLog)>;
        // Group execution logs per shard.
        let mut by_shard: BTreeMap<ShardId, ShardLogs<'_>> = BTreeMap::new();
        for (key, log) in &self.executions {
            by_shard.entry(key.0).or_default().push((key, log));
        }
        for (shard, logs) in by_shard {
            // Pre-project every executed command onto this shard's keys once. A pair
            // only *conflicts* (and must therefore execute in the same order
            // everywhere) if the commands share a key on which at least one of them
            // writes: read-read pairs commute, and dependency-based protocols
            // (Atlas/EPaxos) legitimately execute them in different orders on
            // different replicas. Tempo happens to order them anyway (per-key
            // timestamp order), but the checker must accept both behaviours.
            let mut keys_of: BTreeMap<Rifl, BTreeSet<Key>> = BTreeMap::new();
            let mut write_keys_of: BTreeMap<Rifl, BTreeSet<Key>> = BTreeMap::new();
            for (_, log) in &logs {
                for rifl in &log.order {
                    keys_of
                        .entry(*rifl)
                        .or_insert_with(|| self.keys_on(*rifl, shard));
                    write_keys_of
                        .entry(*rifl)
                        .or_insert_with(|| self.write_keys_on(*rifl, shard));
                }
            }
            for (i, (ka, a)) in logs.iter().enumerate() {
                for (kb, b) in logs.iter().skip(i + 1) {
                    let pos_b: BTreeMap<Rifl, usize> =
                        b.order.iter().enumerate().map(|(i, r)| (*r, i)).collect();
                    // Commands of `a` also executed by `b`, in a's order.
                    let common: Vec<Rifl> = a
                        .order
                        .iter()
                        .copied()
                        .filter(|r| pos_b.contains_key(r))
                        .collect();
                    for (x, &first) in common.iter().enumerate() {
                        for &second in common.iter().skip(x + 1) {
                            let conflicting = !write_keys_of[&first].is_disjoint(&keys_of[&second])
                                || !keys_of[&first].is_disjoint(&write_keys_of[&second]);
                            if pos_b[&second] < pos_b[&first] && conflicting {
                                return Err(Violation::OrderDivergence {
                                    shard,
                                    a: (ka.1, ka.2),
                                    b: (kb.1, kb.2),
                                    first,
                                    second,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_linearizability(&self, summary: &mut CheckSummary) -> Result<(), Violation> {
        // Project every invocation onto its (shard, key) spaces.
        let mut per_key: BTreeMap<(ShardId, Key), Vec<KeyOp>> = BTreeMap::new();
        for inv in self.invocations.values() {
            for shard in inv.cmd.shards() {
                // Outputs of this shard, aligned with `ops_of(shard)` order.
                let shard_outputs: Option<Vec<Option<u64>>> = match &inv.outcome {
                    Outcome::Completed { outputs, .. } => Some(
                        outputs
                            .iter()
                            .filter(|(s, _, _)| *s == shard)
                            .map(|(_, _, out)| *out)
                            .collect(),
                    ),
                    _ => None,
                };
                let ops = inv.cmd.ops_of(shard);
                let mut by_key: BTreeMap<Key, (Vec<KVOp>, Vec<Option<u64>>)> = BTreeMap::new();
                for (i, (key, op)) in ops.iter().enumerate() {
                    let entry = by_key.entry(*key).or_default();
                    entry.0.push(*op);
                    if let Some(outputs) = &shard_outputs {
                        entry.1.push(outputs.get(i).copied().flatten());
                    }
                }
                for (key, (ops, outputs)) in by_key {
                    let (res_us, outputs) = match &inv.outcome {
                        Outcome::Completed { at_us, .. } => (Some(*at_us), Some(outputs)),
                        _ => (None, None),
                    };
                    per_key.entry((shard, key)).or_default().push(KeyOp {
                        inv_us: inv.invoked_us,
                        res_us,
                        ops,
                        outputs,
                    });
                }
            }
        }
        for ((shard, key), mut ops) in per_key {
            if ops.len() > MAX_LIN_OPS {
                summary.keys_skipped += 1;
                continue;
            }
            ops.sort_by_key(|op| op.inv_us);
            if !linearizable(&ops) {
                return Err(Violation::NotLinearizable {
                    shard,
                    key,
                    ops: ops.len(),
                });
            }
            summary.keys_checked += 1;
        }
        Ok(())
    }
}

/// Derives a command's per-register access footprint from its ops and the outputs the
/// client observed (`None` for pending/aborted commands). Per `(shard, key)`:
///
/// * **entry** — set by the first op on the key, and only while no write of this
///   command preceded it on the key: a `Get` output reveals the state directly
///   (`None` ⇒ [`Entry::Initial`]); an `Add` output `o` implies pre-state `o - d`,
///   except `o == d`, where `Some(0)` and absent are indistinguishable
///   ([`Entry::ZeroOrInitial`]). Blind writes and unobserved ops leave it
///   [`Entry::Unknown`].
/// * **exit** — the register content after the last op, tracked symbolically: a `Put`
///   pins it even without outputs (so pending writers still source read-from
///   evidence), an `Add` only when the running state is known.
fn key_accesses(cmd: &Command, outputs: Option<&OpOutputs>) -> Vec<KeyAccess> {
    // Per register: (entry, running state, wrote). The running state is
    // `Option<Option<u64>>`: outer `None` = unknown, inner = register content.
    type RegisterTrack = (Entry, Option<Option<u64>>, bool);
    let mut accesses: BTreeMap<(ShardId, Key), RegisterTrack> = BTreeMap::new();
    for shard in cmd.shards() {
        // Outputs of this shard, aligned with `ops_of(shard)` order.
        let shard_outputs: Option<Vec<Option<u64>>> = outputs.map(|outs| {
            outs.iter()
                .filter(|(s, _, _)| *s == shard)
                .map(|(_, _, out)| *out)
                .collect()
        });
        for (i, (key, op)) in cmd.ops_of(shard).iter().enumerate() {
            // `None` = no observation (not completed); `Some(out)` = observed output.
            let obs: Option<Option<u64>> =
                shard_outputs.as_ref().and_then(|outs| outs.get(i).copied());
            let (entry, state, wrote) =
                accesses
                    .entry((shard, *key))
                    .or_insert((Entry::Unknown, None, false));
            // Entry may only be derived before any write of ours touched the key.
            let can_reveal = !*wrote && *entry == Entry::Unknown;
            match op {
                KVOp::Get => {
                    if let Some(o) = obs {
                        if can_reveal {
                            *entry = match o {
                                None => Entry::Initial,
                                Some(v) => Entry::Value(v),
                            };
                        }
                        if state.is_none() {
                            *state = Some(o);
                        }
                    }
                }
                KVOp::Put(v) => {
                    *wrote = true;
                    *state = Some(Some(*v));
                }
                KVOp::Add(d) => {
                    *wrote = true;
                    if let Some(s) = *state {
                        *state = Some(Some(s.unwrap_or(0).wrapping_add(*d)));
                    } else if let Some(Some(o)) = obs {
                        if can_reveal {
                            let pre = o.wrapping_sub(*d);
                            *entry = if pre == 0 {
                                Entry::ZeroOrInitial
                            } else {
                                Entry::Value(pre)
                            };
                        }
                        *state = Some(Some(o));
                    }
                }
            }
        }
    }
    accesses
        .into_iter()
        .map(|((shard, key), (entry, state, wrote))| KeyAccess {
            shard,
            key,
            writes: wrote,
            entry,
            exit: if wrote { state.flatten() } else { None },
        })
        .collect()
}

/// One command's atomic batch of operations on a single key.
#[derive(Debug, Clone)]
struct KeyOp {
    inv_us: u64,
    /// `None` for pending/aborted operations (they may take effect at any point after
    /// invocation, or never).
    res_us: Option<u64>,
    ops: Vec<KVOp>,
    /// Observed outputs (one per op), only for completed operations.
    outputs: Option<Vec<Option<u64>>>,
}

/// Applies an atomic op batch to the register; returns the new state and `false` if a
/// completed op's observed output contradicts it. Semantics mirror
/// `tempo_kernel::kvstore::KVStore::apply`.
fn apply(op: &KeyOp, state: Option<u64>) -> (Option<u64>, bool) {
    let mut state = state;
    for (i, kv) in op.ops.iter().enumerate() {
        let out = match kv {
            KVOp::Get => state,
            KVOp::Put(v) => {
                state = Some(*v);
                Some(*v)
            }
            KVOp::Add(d) => {
                let new = state.unwrap_or(0).wrapping_add(*d);
                state = Some(new);
                Some(new)
            }
        };
        if let Some(outputs) = &op.outputs {
            if outputs[i] != out {
                return (state, false);
            }
        }
    }
    (state, true)
}

/// Wing & Gong linearizability search over one key's operations, with memoization on
/// `(linearized mask, register state)`. Operations without a response are optional: the
/// search succeeds once every *completed* operation is linearized.
fn linearizable(ops: &[KeyOp]) -> bool {
    assert!(ops.len() <= MAX_LIN_OPS);
    let completed_mask: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| op.res_us.is_some())
        .fold(0u128, |mask, (i, _)| mask | (1u128 << i));
    let mut memo: HashSet<(u128, Option<u64>)> = HashSet::new();
    let mut stack: Vec<(u128, Option<u64>)> = vec![(0, None)];
    while let Some((mask, state)) = stack.pop() {
        if mask & completed_mask == completed_mask {
            return true;
        }
        if !memo.insert((mask, state)) {
            continue;
        }
        // An op can be linearized next iff it was invoked before every other
        // unlinearized op completed (real-time order must be respected).
        let min_res = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1u128 << i) == 0)
            .filter_map(|(_, op)| op.res_us)
            .min()
            .unwrap_or(u64::MAX);
        for (i, op) in ops.iter().enumerate() {
            if mask & (1u128 << i) != 0 || op.inv_us > min_res {
                continue;
            }
            let (new_state, ok) = apply(op, state);
            if ok {
                stack.push((mask | (1u128 << i), new_state));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd_put(rifl: Rifl, key: Key, value: u64) -> Command {
        Command::single(rifl, 0, key, KVOp::Put(value), 0)
    }

    fn cmd_get(rifl: Rifl, key: Key) -> Command {
        Command::single(rifl, 0, key, KVOp::Get, 0)
    }

    #[test]
    fn sequential_history_passes() {
        let mut h = History::new();
        let w = Rifl::new(1, 1);
        let r = Rifl::new(1, 2);
        h.record_invoke(w, cmd_put(w, 5, 7), 0);
        h.record_complete(w, 10, vec![(0, 5, Some(7))]);
        h.record_invoke(r, cmd_get(r, 5), 20);
        h.record_complete(r, 30, vec![(0, 5, Some(7))]);
        for p in 0..3 {
            h.record_execution(0, p, 0, w);
            h.record_execution(0, p, 0, r);
        }
        let summary = h.check().expect("history is linearizable");
        assert_eq!(summary.commands, 2);
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.keys_checked, 1);
        assert_eq!(summary.replicas, 3);
    }

    #[test]
    fn stale_read_is_caught() {
        // Write completes, then a later read observes the pre-write value: not
        // linearizable.
        let mut h = History::new();
        let w = Rifl::new(1, 1);
        let r = Rifl::new(2, 1);
        h.record_invoke(w, cmd_put(w, 9, 1), 0);
        h.record_complete(w, 10, vec![(0, 9, Some(1))]);
        h.record_invoke(r, cmd_get(r, 9), 20);
        h.record_complete(r, 30, vec![(0, 9, None)]);
        assert!(matches!(
            h.check(),
            Err(Violation::NotLinearizable {
                shard: 0,
                key: 9,
                ..
            })
        ));
    }

    #[test]
    fn concurrent_read_may_or_may_not_see_the_write() {
        // Read overlaps the write: both outcomes are linearizable.
        for observed in [None, Some(4u64)] {
            let mut h = History::new();
            let w = Rifl::new(1, 1);
            let r = Rifl::new(2, 1);
            h.record_invoke(w, cmd_put(w, 3, 4), 0);
            h.record_complete(w, 100, vec![(0, 3, Some(4))]);
            h.record_invoke(r, cmd_get(r, 3), 50);
            h.record_complete(r, 60, vec![(0, 3, observed)]);
            assert!(
                h.check().is_ok(),
                "observed {observed:?} must be admissible"
            );
        }
    }

    #[test]
    fn aborted_write_may_take_effect_or_not() {
        for observed in [None, Some(8u64)] {
            let mut h = History::new();
            let w = Rifl::new(1, 1);
            let r = Rifl::new(2, 1);
            h.record_invoke(w, cmd_put(w, 1, 8), 0);
            h.record_abort(w);
            h.record_invoke(r, cmd_get(r, 1), 1_000);
            h.record_complete(r, 1_010, vec![(0, 1, observed)]);
            assert!(h.check().is_ok(), "aborted write: {observed:?} admissible");
        }
    }

    #[test]
    fn rmw_chain_pins_the_order() {
        // Two Adds returning 1 then 2: linearizable. Returning 1 twice: not.
        let a = Rifl::new(1, 1);
        let b = Rifl::new(2, 1);
        let build = |second_output: u64| {
            let mut h = History::new();
            h.record_invoke(a, Command::single(a, 0, 0, KVOp::Add(1), 0), 0);
            h.record_complete(a, 100, vec![(0, 0, Some(1))]);
            h.record_invoke(b, Command::single(b, 0, 0, KVOp::Add(1), 0), 10);
            h.record_complete(b, 110, vec![(0, 0, Some(second_output))]);
            h
        };
        assert!(build(2).check().is_ok());
        assert!(matches!(
            build(1).check(),
            Err(Violation::NotLinearizable { .. })
        ));
    }

    #[test]
    fn duplicate_execution_is_caught() {
        let mut h = History::new();
        let w = Rifl::new(1, 1);
        h.record_invoke(w, cmd_put(w, 1, 1), 0);
        h.record_execution(0, 2, 0, w);
        h.record_execution(0, 2, 0, w);
        assert!(matches!(
            h.check(),
            Err(Violation::DuplicateExecution { process: 2, .. })
        ));
    }

    #[test]
    fn restarted_replica_may_reexecute_in_a_new_incarnation() {
        let mut h = History::new();
        let w = Rifl::new(1, 1);
        h.record_invoke(w, cmd_put(w, 1, 1), 0);
        h.record_execution(0, 2, 0, w);
        h.record_execution(0, 2, 1, w); // Fresh incarnation: allowed.
        assert!(h.check().is_ok());
    }

    #[test]
    fn divergent_conflicting_order_is_caught() {
        let mut h = History::new();
        let x = Rifl::new(1, 1);
        let y = Rifl::new(2, 1);
        h.record_invoke(x, cmd_put(x, 7, 1), 0);
        h.record_invoke(y, cmd_put(y, 7, 2), 0);
        h.record_execution(0, 0, 0, x);
        h.record_execution(0, 0, 0, y);
        h.record_execution(0, 1, 0, y);
        h.record_execution(0, 1, 0, x);
        assert!(matches!(h.check(), Err(Violation::OrderDivergence { .. })));
    }

    #[test]
    fn divergent_read_read_order_is_allowed() {
        // Two `Get`s on the same key commute; replicas may execute them in either
        // order (Atlas/EPaxos do exactly that).
        let mut h = History::new();
        let x = Rifl::new(1, 1);
        let y = Rifl::new(2, 1);
        h.record_invoke(x, cmd_get(x, 5), 0);
        h.record_invoke(y, cmd_get(y, 5), 0);
        h.record_execution(0, 0, 0, x);
        h.record_execution(0, 0, 0, y);
        h.record_execution(0, 1, 0, y);
        h.record_execution(0, 1, 0, x);
        assert!(h.check().is_ok());
    }

    #[test]
    fn divergent_read_write_order_is_caught() {
        // A `Get` and a `Put` on the same key do conflict: divergent order is real.
        let mut h = History::new();
        let x = Rifl::new(1, 1);
        let y = Rifl::new(2, 1);
        h.record_invoke(x, cmd_get(x, 5), 0);
        h.record_invoke(y, cmd_put(y, 5, 9), 0);
        h.record_execution(0, 0, 0, x);
        h.record_execution(0, 0, 0, y);
        h.record_execution(0, 1, 0, y);
        h.record_execution(0, 1, 0, x);
        assert!(matches!(
            h.check(),
            Err(Violation::OrderDivergence { shard: 0, .. })
        ));
    }

    #[test]
    fn divergent_nonconflicting_order_is_allowed() {
        let mut h = History::new();
        let x = Rifl::new(1, 1);
        let y = Rifl::new(2, 1);
        h.record_invoke(x, cmd_put(x, 1, 1), 0);
        h.record_invoke(y, cmd_put(y, 2, 2), 0);
        h.record_execution(0, 0, 0, x);
        h.record_execution(0, 0, 0, y);
        h.record_execution(0, 1, 0, y);
        h.record_execution(0, 1, 0, x);
        assert!(h.check().is_ok());
    }

    #[test]
    fn oversized_keys_are_skipped_and_reported() {
        let mut h = History::new();
        for i in 0..(MAX_LIN_OPS as u64 + 1) {
            let r = Rifl::new(1, i + 1);
            h.record_invoke(r, cmd_put(r, 0, i), i * 10);
            h.record_complete(r, i * 10 + 5, vec![(0, 0, Some(i))]);
        }
        let summary = h.check().expect("skipped, not failed");
        assert_eq!(summary.keys_skipped, 1);
        assert_eq!(summary.keys_checked, 0);
    }
}
