//! `tempo-fault` — deterministic fault injection and history checking.
//!
//! The paper's availability claims rest on its recovery protocol (Algorithm 4): a
//! command whose coordinator crashes is still assigned a timestamp and executed by the
//! surviving quorum. This crate provides the two halves needed to *test* that claim in
//! simulation:
//!
//! * [`nemesis`] — a seeded schedule of fault events (crashes, restarts, partitions,
//!   lossy links, delay spikes) plus the network-state bookkeeping the simulator
//!   consults before delivering each message, and preset schedules for the canonical
//!   adversities (coordinator crash mid-commit, rolling crashes up to `f`, split brain
//!   and heal, lossy-link soak);
//! * [`history`] — a concurrent history of client invocations/responses and per-replica
//!   execution sequences, with a checker for per-key linearizability, cross-replica
//!   agreement on the order of conflicting commands, and at-most-once execution;
//! * [`serializability`] — cross-key strict serializability for multi-key commands: a
//!   commit-order constraint graph (read-from, initial-read, overwrite, per-key
//!   real-time, program order) whose cycles are anomalies, reported as a minimal
//!   cycle with the operations involved;
//! * [`detector`] — a timeout-based, heartbeat-fed failure detector that replaces the
//!   perfect suspicion oracle of earlier PRs: wrong suspicions become possible, which
//!   is precisely the adversity the recovery ballot races must absorb.
//!
//! Everything is deterministic given a seed, so a failing schedule replays exactly.
//!
//! # Driving it
//!
//! The crate is runtime-agnostic: `tempo-sim` consumes a [`NemesisSchedule`] through
//! `SimOpts::nemesis` and records a [`History`] with `SimOpts::record_history`; any
//! other embedder can do the same by consulting [`Nemesis`] before each delivery and
//! feeding the history the invoke/complete/abort/execution events it observes. Crash
//! *recovery* composes with durable state: the simulator's protocol factory decides
//! what a restarted process keeps (a `tempo-store` backend) versus loses (everything
//! volatile) — see `tests/durability.rs` for the two extremes, and `tests/chaos.rs`
//! for the preset + randomized battery every change must keep green.
//!
//! # What a green checker does and does not mean
//!
//! [`History::check`] is a per-run bug finder over the schedules actually injected,
//! not a proof: it covers per-key linearizability (Wing & Gong with memoization;
//! aborted and unanswered operations linearized optionally), replica agreement on
//! conflicting-command order per incarnation, at-most-once execution, and — when the
//! history contains multi-key commands — cross-key strict serializability through the
//! constraint graph of [`serializability`] (single-key histories skip that pass
//! entirely). It still only explores the interleavings the seeds produce, and the
//! graph only uses constraints that are *forced* by observations (ambiguous
//! value-to-writer mappings are skipped — see DESIGN.md §11 for the limits). DESIGN.md
//! §5 states the full fault model; §6 the durability model layered on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod history;
pub mod nemesis;
pub mod serializability;

pub use detector::{DetectorEvent, DetectorOpts, DetectorStats, FailureDetector};
pub use history::{CheckSummary, History, Violation};
pub use nemesis::{FaultEvent, FaultSummary, Nemesis, NemesisSchedule, RandomNemesisOpts};
pub use serializability::{CycleEdge, EdgeKind, SerSummary};
