//! `tempo-fault` — deterministic fault injection and history checking.
//!
//! The paper's availability claims rest on its recovery protocol (Algorithm 4): a
//! command whose coordinator crashes is still assigned a timestamp and executed by the
//! surviving quorum. This crate provides the two halves needed to *test* that claim in
//! simulation:
//!
//! * [`nemesis`] — a seeded schedule of fault events (crashes, restarts, partitions,
//!   lossy links, delay spikes) plus the network-state bookkeeping the simulator
//!   consults before delivering each message, and preset schedules for the canonical
//!   adversities (coordinator crash mid-commit, rolling crashes up to `f`, split brain
//!   and heal, lossy-link soak);
//! * [`history`] — a concurrent history of client invocations/responses and per-replica
//!   execution sequences, with a checker for per-key linearizability, cross-replica
//!   agreement on the order of conflicting commands, and at-most-once execution.
//!
//! Everything is deterministic given a seed, so a failing schedule replays exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod nemesis;

pub use history::{CheckSummary, History, Violation};
pub use nemesis::{FaultEvent, FaultSummary, Nemesis, NemesisSchedule, RandomNemesisOpts};
