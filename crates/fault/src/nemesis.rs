//! Deterministic, seeded fault schedules and the network state they induce.
//!
//! A [`NemesisSchedule`] is a time-ordered list of [`FaultEvent`]s. The simulator hands
//! the schedule to a [`Nemesis`], advances it as simulated time passes, and consults it
//! before every message delivery: crashed endpoints, partitioned links and Bernoulli
//! link drops all silently discard the message (counted in the [`FaultSummary`]), while
//! delay spikes stretch a link's latency. Crash/restart events are returned to the
//! embedder, which owns the process lifecycle (killing and rebuilding drivers).
//!
//! The translation of Byzantine-grade adversity into systematically injected *crash*
//! faults follows the methodology of Imbs/Raynal/Stainer ("From Byzantine Failures to
//! Crash Failures", see PAPERS.md); the preset schedules cover the scenarios the paper's
//! recovery protocol (Algorithm 4) must survive.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tempo_kernel::config::Config;
use tempo_kernel::id::ProcessId;
use tempo_kernel::membership::Membership;
use tempo_kernel::rand::Rng;

/// One injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The process stops: it neither sends nor receives anything, its timers no longer
    /// fire, and every message it had in flight is lost (its connections die with it).
    Crash(ProcessId),
    /// The process comes back with **volatile state lost**: the embedder rebuilds it
    /// from scratch (`Protocol::new` + `rejoin`) and it rejoins the cluster.
    Restart(ProcessId),
    /// The network splits into the given groups: messages are delivered only within a
    /// group. Processes not named in any group form one implicit extra group.
    Partition(Vec<Vec<ProcessId>>),
    /// Restores the perfect network: clears the partition, all link faults and all
    /// delay spikes (crashed processes stay crashed).
    Heal,
    /// The directed link `from → to` drops each message independently with
    /// probability `p`.
    DropLink {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
        /// Per-message drop probability.
        p: f64,
    },
    /// The directed link `from → to` gains `extra_us` of one-way latency.
    DelaySpike {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
        /// Additional one-way latency, in microseconds.
        extra_us: u64,
    },
    /// Gray failure: the process stays alive and correct but *answers* at a crawl —
    /// every frame it sends gains `extra_us` of latency (typically ~100× the normal
    /// RTT). To a timeout-based detector this is indistinguishable from a crash until
    /// the late frames land, so it provokes suspect/unsuspect flapping. Cleared by
    /// [`FaultEvent::Heal`].
    SlowNode {
        /// The slow process.
        process: ProcessId,
        /// Extra one-way latency on every frame it sends, in microseconds.
        extra_us: u64,
    },
    /// The directed link `from → to` delivers each frame a second time with
    /// probability `p` (the duplicate arrives immediately after the original).
    /// Protocol handlers must be idempotent for this to be harmless. Cleared by
    /// [`FaultEvent::Heal`].
    DuplicateFrame {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
        /// Per-frame duplication probability.
        p: f64,
    },
    /// The directed link `from → to` holds each frame back with probability `p`,
    /// releasing it after a short extra delay — later frames overtake it, so the
    /// link is no longer FIFO. Cleared by [`FaultEvent::Heal`].
    ReorderFrame {
        /// Sending process.
        from: ProcessId,
        /// Receiving process.
        to: ProcessId,
        /// Per-frame holdback probability.
        p: f64,
    },
}

/// Counters of injected faults and of their message-level effects, reported alongside
/// the latency percentiles in the simulator's run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// `Crash` events applied.
    pub crashes: u64,
    /// `Restart` events applied.
    pub restarts: u64,
    /// `Partition` events applied.
    pub partitions: u64,
    /// `Heal` events applied.
    pub heals: u64,
    /// `DropLink` events applied.
    pub link_faults: u64,
    /// `DelaySpike` events applied.
    pub delay_spikes: u64,
    /// `SlowNode` events applied.
    pub slow_nodes: u64,
    /// `DuplicateFrame` events applied.
    pub dup_links: u64,
    /// `ReorderFrame` events applied.
    pub reorder_links: u64,
    /// Messages dropped because an endpoint was crashed (or the sender had restarted
    /// since sending: its connections died with the old incarnation).
    pub dropped_crash: u64,
    /// Messages dropped by an active partition.
    pub dropped_partition: u64,
    /// Messages dropped by a lossy link's Bernoulli draw.
    pub dropped_link: u64,
    /// Messages that crossed a delay-spiked link.
    pub delayed: u64,
    /// Messages delayed because their sender was a `SlowNode`.
    pub slowed: u64,
    /// Messages delivered twice by a `DuplicateFrame` draw.
    pub duplicated: u64,
    /// Messages held back (delivered out of order) by a `ReorderFrame` draw.
    pub reordered: u64,
}

impl FaultSummary {
    /// Total injected fault events.
    pub fn events(&self) -> u64 {
        self.crashes
            + self.restarts
            + self.partitions
            + self.heals
            + self.link_faults
            + self.delay_spikes
            + self.slow_nodes
            + self.dup_links
            + self.reorder_links
    }

    /// Total messages dropped, for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_crash + self.dropped_partition + self.dropped_link
    }
}

/// A time-ordered fault schedule (times are absolute simulated microseconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NemesisSchedule {
    events: Vec<(u64, FaultEvent)>,
}

impl NemesisSchedule {
    /// Creates a schedule from `(time_us, event)` pairs (sorted internally; ties keep
    /// their relative order).
    pub fn new(mut events: Vec<(u64, FaultEvent)>) -> Self {
        events.sort_by_key(|(t, _)| *t);
        Self { events }
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Folds `other`'s events into this schedule, keeping time order (composes
    /// presets — e.g. a slow node *and* a lossy soak in one run). Ties keep their
    /// relative order, `self` before `other`.
    pub fn merge(&mut self, other: NemesisSchedule) {
        self.events.extend(other.events);
        self.events.sort_by_key(|(t, _)| *t);
    }

    /// The distinct event times, ascending (the simulator registers one wake-up per
    /// time so faults apply at exactly the right simulated instant).
    pub fn times(&self) -> Vec<u64> {
        let mut times: Vec<u64> = self.events.iter().map(|(t, _)| *t).collect();
        times.dedup();
        times
    }

    // ------------------------------------------------------------------ presets

    /// Preset: crash one process (a command coordinator, typically) at `at_us` — after
    /// it has proposed but before it commits — and never bring it back. The surviving
    /// quorum must finish the command through `MRec` (Algorithm 4).
    pub fn coordinator_crash(process: ProcessId, at_us: u64) -> Self {
        Self::new(vec![(at_us, FaultEvent::Crash(process))])
    }

    /// Preset: rolling crashes through the first `f` sites — site `i` crashes (all its
    /// processes), stays down for half a `period_us`, restarts with volatile state
    /// lost, and then the next site follows. At most one site is ever down, but over
    /// the run every tolerated failure budget is spent.
    pub fn rolling_crashes(config: Config, start_us: u64, period_us: u64) -> Self {
        let membership = Membership::from_config(&config);
        let mut events = Vec::new();
        for i in 0..config.f() as u64 {
            let at = start_us + 2 * i * period_us;
            for p in membership.processes_of_site(i) {
                events.push((at, FaultEvent::Crash(p)));
                events.push((at + period_us, FaultEvent::Restart(p)));
            }
        }
        Self::new(events)
    }

    /// Preset: split-brain — the first `f` sites are partitioned away from the rest
    /// between `at_us` and `heal_at_us`. The majority side keeps committing; the
    /// minority's submissions stall and must finish (or be recovered) after the heal.
    pub fn split_brain_and_heal(config: Config, at_us: u64, heal_at_us: u64) -> Self {
        assert!(heal_at_us > at_us, "heal must come after the split");
        let membership = Membership::from_config(&config);
        let minority: Vec<ProcessId> = (0..config.f() as u64)
            .flat_map(|site| membership.processes_of_site(site))
            .collect();
        let majority: Vec<ProcessId> = membership
            .all_processes()
            .into_iter()
            .filter(|p| !minority.contains(p))
            .collect();
        Self::new(vec![
            (at_us, FaultEvent::Partition(vec![minority, majority])),
            (heal_at_us, FaultEvent::Heal),
        ])
    }

    /// Preset: lossy-link soak — every directed link drops messages with probability
    /// `p` between `from_us` and `until_us`. Commits must still happen through the
    /// retransmission/recovery machinery.
    pub fn lossy_link_soak(config: Config, p: f64, from_us: u64, until_us: u64) -> Self {
        assert!(until_us > from_us, "soak window must be non-empty");
        let membership = Membership::from_config(&config);
        let all = membership.all_processes();
        let mut events = Vec::new();
        for &from in &all {
            for &to in &all {
                if from != to {
                    events.push((from_us, FaultEvent::DropLink { from, to, p }));
                }
            }
        }
        events.push((until_us, FaultEvent::Heal));
        Self::new(events)
    }

    /// Preset: gray failure — `process` stays alive but answers at `extra_us` extra
    /// latency (typically ~100× the healthy RTT) between `at_us` and `until_us`. A
    /// timeout-based detector must eventually suspect it, the protocol must keep
    /// committing around it, and the heal must let it rejoin the quorums.
    pub fn slow_node(process: ProcessId, extra_us: u64, at_us: u64, until_us: u64) -> Self {
        assert!(until_us > at_us, "slow window must be non-empty");
        Self::new(vec![
            (at_us, FaultEvent::SlowNode { process, extra_us }),
            (until_us, FaultEvent::Heal),
        ])
    }

    /// Preset: duplicate/reorder soak — every directed link both duplicates and holds
    /// back frames with probability `p` between `from_us` and `until_us`. Exercises
    /// handler idempotence and the protocol's tolerance of non-FIFO links.
    pub fn duplicate_reorder_soak(config: Config, p: f64, from_us: u64, until_us: u64) -> Self {
        assert!(until_us > from_us, "soak window must be non-empty");
        let membership = Membership::from_config(&config);
        let all = membership.all_processes();
        let mut events = Vec::new();
        for &from in &all {
            for &to in &all {
                if from != to {
                    events.push((from_us, FaultEvent::DuplicateFrame { from, to, p }));
                    events.push((from_us, FaultEvent::ReorderFrame { from, to, p }));
                }
            }
        }
        events.push((until_us, FaultEvent::Heal));
        Self::new(events)
    }

    /// A seeded random schedule: a handful of non-overlapping incidents (crash with
    /// optional restart, partition-and-heal, lossy window, delay-spike window, slow
    /// node, duplicate/reorder window) placed over the horizon. Crash budgets respect
    /// `f` per shard — counting a restarted process as spent, since it comes back with
    /// volatile state lost — and every network incident heals before the horizon, so a
    /// run always regains liveness. Link-level incidents only ever target processes
    /// that are still up at that point in the schedule: a `DelaySpike` (or lossy link,
    /// or gray fault) aimed at a crashed process would be a wasted event.
    pub fn random(opts: &RandomNemesisOpts) -> Self {
        let mut rng = Rng::new(opts.seed);
        let membership = Membership::from_config(&opts.config);
        let f = opts.config.f();
        let sites = opts.config.n() as u64;
        let mut events = Vec::new();
        // Per-site crash budget: crashing a site spends one unit of every shard's
        // budget at once (one process per shard lives there), so `f` sites total.
        let mut crash_budget = f;
        // Sites crashed without a scheduled restart: permanently down for the rest of
        // the schedule, so later incidents must not target their processes.
        let mut down_sites: BTreeSet<u64> = BTreeSet::new();
        let alive = |down: &BTreeSet<u64>| -> Vec<ProcessId> {
            (0..sites)
                .filter(|s| !down.contains(s))
                .flat_map(|s| membership.processes_of_site(s))
                .collect()
        };
        let incidents = opts.incidents.max(1) as u64;
        let segment = opts.horizon_us / (incidents + 1);
        for i in 0..incidents {
            let base = segment * (i + 1);
            // The `.max(1)` guards the *bound*: a degenerate horizon must not panic in
            // `gen_range(0)`, it just loses the jitter.
            let start = base + rng.gen_range((segment / 4).max(1));
            let end = start + segment / 2;
            match rng.gen_range(6) {
                0 if crash_budget > 0 && down_sites.len() < sites as usize => {
                    crash_budget -= 1;
                    // Pick among the sites still up — crashing a dead site is a no-op.
                    let up: Vec<u64> = (0..sites).filter(|s| !down_sites.contains(s)).collect();
                    let site = up[rng.gen_range(up.len() as u64) as usize];
                    let restarts = rng.gen_bool(0.5);
                    if !restarts {
                        down_sites.insert(site);
                    }
                    for p in membership.processes_of_site(site) {
                        events.push((start, FaultEvent::Crash(p)));
                        if restarts {
                            events.push((end, FaultEvent::Restart(p)));
                        }
                    }
                }
                1 => {
                    let minority_site = rng.gen_range(sites);
                    let minority = membership.processes_of_site(minority_site);
                    let majority: Vec<ProcessId> = membership
                        .all_processes()
                        .into_iter()
                        .filter(|p| !minority.contains(p))
                        .collect();
                    events.push((start, FaultEvent::Partition(vec![minority, majority])));
                    events.push((end, FaultEvent::Heal));
                }
                2 => {
                    let p = 0.05 + rng.next_f64() * 0.15;
                    let links = 1 + rng.gen_range(4);
                    let up = alive(&down_sites);
                    if up.len() < 2 {
                        continue;
                    }
                    for _ in 0..links {
                        let (from, to) = distinct_pair(&mut rng, &up);
                        events.push((start, FaultEvent::DropLink { from, to, p }));
                    }
                    events.push((end, FaultEvent::Heal));
                }
                3 => {
                    let up = alive(&down_sites);
                    if up.len() < 2 {
                        continue;
                    }
                    let (from, to) = distinct_pair(&mut rng, &up);
                    let extra_us = 10_000 + rng.gen_range(200_000);
                    events.push((start, FaultEvent::DelaySpike { from, to, extra_us }));
                    events.push((end, FaultEvent::Heal));
                }
                4 => {
                    let up = alive(&down_sites);
                    if up.is_empty() {
                        continue;
                    }
                    let process = up[rng.gen_range(up.len() as u64) as usize];
                    let extra_us = 100_000 + rng.gen_range(400_000);
                    events.push((start, FaultEvent::SlowNode { process, extra_us }));
                    events.push((end, FaultEvent::Heal));
                }
                _ => {
                    let up = alive(&down_sites);
                    if up.len() < 2 {
                        continue;
                    }
                    let p = 0.1 + rng.next_f64() * 0.3;
                    let links = 1 + rng.gen_range(4);
                    for _ in 0..links {
                        let (from, to) = distinct_pair(&mut rng, &up);
                        if rng.gen_bool(0.5) {
                            events.push((start, FaultEvent::DuplicateFrame { from, to, p }));
                        } else {
                            events.push((start, FaultEvent::ReorderFrame { from, to, p }));
                        }
                    }
                    events.push((end, FaultEvent::Heal));
                }
            }
        }
        Self::new(events)
    }
}

/// A uniformly random ordered pair of *distinct* processes (so every generated link
/// fault is a real link — an incident never degenerates to zero events).
fn distinct_pair(rng: &mut Rng, all: &[ProcessId]) -> (ProcessId, ProcessId) {
    assert!(all.len() >= 2);
    let from_idx = rng.gen_range(all.len() as u64) as usize;
    let mut to_idx = rng.gen_range(all.len() as u64 - 1) as usize;
    if to_idx >= from_idx {
        to_idx += 1;
    }
    (all[from_idx], all[to_idx])
}

/// Parameters of [`NemesisSchedule::random`].
#[derive(Debug, Clone)]
pub struct RandomNemesisOpts {
    /// The deployment the schedule targets (bounds crash budgets and process ids).
    pub config: Config,
    /// The simulated-time horizon over which incidents are placed.
    pub horizon_us: u64,
    /// Number of incidents to place (at least 1).
    pub incidents: usize,
    /// Seed for schedule generation *and* for the per-message Bernoulli drop draws.
    pub seed: u64,
}

/// The live fault-injection state the simulator consults.
#[derive(Debug, Clone)]
pub struct Nemesis {
    pending: VecDeque<(u64, FaultEvent)>,
    rng: Rng,
    down: BTreeSet<ProcessId>,
    /// Partition groups, when active: process -> group index (unlisted processes share
    /// the implicit group `usize::MAX`).
    groups: Option<BTreeMap<ProcessId, usize>>,
    link_drop: BTreeMap<(ProcessId, ProcessId), f64>,
    link_delay: BTreeMap<(ProcessId, ProcessId), u64>,
    slow: BTreeMap<ProcessId, u64>,
    link_dup: BTreeMap<(ProcessId, ProcessId), f64>,
    link_reorder: BTreeMap<(ProcessId, ProcessId), f64>,
    summary: FaultSummary,
}

impl Nemesis {
    /// Creates the nemesis from a schedule; `seed` drives the per-message drop draws.
    pub fn new(schedule: NemesisSchedule, seed: u64) -> Self {
        Self {
            pending: schedule.events.into(),
            rng: Rng::new(seed),
            down: BTreeSet::new(),
            groups: None,
            link_drop: BTreeMap::new(),
            link_delay: BTreeMap::new(),
            slow: BTreeMap::new(),
            link_dup: BTreeMap::new(),
            link_reorder: BTreeMap::new(),
            summary: FaultSummary::default(),
        }
    }

    /// The time of the next scheduled fault, if any.
    pub fn next_due(&self) -> Option<u64> {
        self.pending.front().map(|(t, _)| *t)
    }

    /// Applies every fault due at or before `now_us` to the network state and returns
    /// them; the embedder acts on `Crash`/`Restart` (process lifecycle) and may log the
    /// rest.
    pub fn advance(&mut self, now_us: u64) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while self.pending.front().is_some_and(|(t, _)| *t <= now_us) {
            let (_, event) = self.pending.pop_front().expect("checked non-empty");
            match &event {
                FaultEvent::Crash(p) => {
                    self.down.insert(*p);
                    self.summary.crashes += 1;
                }
                FaultEvent::Restart(p) => {
                    self.down.remove(p);
                    self.summary.restarts += 1;
                }
                FaultEvent::Partition(groups) => {
                    let mut map = BTreeMap::new();
                    for (i, group) in groups.iter().enumerate() {
                        for p in group {
                            map.insert(*p, i);
                        }
                    }
                    self.groups = Some(map);
                    self.summary.partitions += 1;
                }
                FaultEvent::Heal => {
                    self.groups = None;
                    self.link_drop.clear();
                    self.link_delay.clear();
                    self.slow.clear();
                    self.link_dup.clear();
                    self.link_reorder.clear();
                    self.summary.heals += 1;
                }
                FaultEvent::DropLink { from, to, p } => {
                    self.link_drop.insert((*from, *to), *p);
                    self.summary.link_faults += 1;
                }
                FaultEvent::DelaySpike { from, to, extra_us } => {
                    self.link_delay.insert((*from, *to), *extra_us);
                    self.summary.delay_spikes += 1;
                }
                FaultEvent::SlowNode { process, extra_us } => {
                    self.slow.insert(*process, *extra_us);
                    self.summary.slow_nodes += 1;
                }
                FaultEvent::DuplicateFrame { from, to, p } => {
                    self.link_dup.insert((*from, *to), *p);
                    self.summary.dup_links += 1;
                }
                FaultEvent::ReorderFrame { from, to, p } => {
                    self.link_reorder.insert((*from, *to), *p);
                    self.summary.reorder_links += 1;
                }
            }
            fired.push(event);
        }
        fired
    }

    /// Whether `process` is currently crashed.
    pub fn is_down(&self, process: ProcessId) -> bool {
        self.down.contains(&process)
    }

    /// Extra one-way latency of `from → to` under the active delay spikes and slow
    /// nodes (applied at send time, like the serialization delay it models). A
    /// `SlowNode` slows everything its victim *sends* — its answers — which is what a
    /// heartbeat-fed detector at the receiving end actually observes.
    pub fn send_delay(&mut self, from: ProcessId, to: ProcessId) -> u64 {
        let mut total = 0;
        if let Some(extra) = self.link_delay.get(&(from, to)) {
            self.summary.delayed += 1;
            total += *extra;
        }
        if let Some(extra) = self.slow.get(&from) {
            self.summary.slowed += 1;
            total += *extra;
        }
        total
    }

    /// Consulted at delivery time: whether this frame should additionally be delivered
    /// a second time (an active `DuplicateFrame` link whose Bernoulli draw fired).
    pub fn should_duplicate(&mut self, from: ProcessId, to: ProcessId) -> bool {
        if let Some(p) = self.link_dup.get(&(from, to)).copied() {
            if self.rng.gen_bool(p) {
                self.summary.duplicated += 1;
                return true;
            }
        }
        false
    }

    /// Consulted at delivery time: if an active `ReorderFrame` link's draw fires,
    /// returns the extra holdback delay (in microseconds) the frame must wait before
    /// delivery — later frames overtake it, breaking FIFO on the link.
    pub fn reorder_delay(&mut self, from: ProcessId, to: ProcessId) -> Option<u64> {
        if let Some(p) = self.link_reorder.get(&(from, to)).copied() {
            if self.rng.gen_bool(p) {
                self.summary.reordered += 1;
                return Some(500 + self.rng.gen_range(5_000));
            }
        }
        None
    }

    /// Whether `process` is currently a `SlowNode` victim, and by how much.
    pub fn slow_node_extra(&self, process: ProcessId) -> Option<u64> {
        self.slow.get(&process).copied()
    }

    /// Consulted at delivery time: whether the message may be delivered given the
    /// partition and lossy-link state. Records any drop in the summary.
    pub fn allows_delivery(&mut self, from: ProcessId, to: ProcessId) -> bool {
        if let Some(groups) = &self.groups {
            let ga = groups.get(&from).copied().unwrap_or(usize::MAX);
            let gb = groups.get(&to).copied().unwrap_or(usize::MAX);
            if ga != gb {
                self.summary.dropped_partition += 1;
                return false;
            }
        }
        if let Some(p) = self.link_drop.get(&(from, to)).copied() {
            if self.rng.gen_bool(p) {
                self.summary.dropped_link += 1;
                return false;
            }
        }
        true
    }

    /// Records a message dropped because an endpoint was crashed or the sender
    /// restarted since sending (the embedder detects both — it owns incarnations).
    pub fn note_crash_drop(&mut self) {
        self.summary.dropped_crash += 1;
    }

    /// The fault counters so far.
    pub fn summary(&self) -> FaultSummary {
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_time_and_reports_times() {
        let s = NemesisSchedule::new(vec![
            (50, FaultEvent::Heal),
            (10, FaultEvent::Crash(1)),
            (50, FaultEvent::Crash(2)),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.times(), vec![10, 50]);
        assert!(matches!(s.events()[0], (10, FaultEvent::Crash(1))));
    }

    #[test]
    fn nemesis_applies_crash_and_restart() {
        let s = NemesisSchedule::new(vec![
            (10, FaultEvent::Crash(0)),
            (20, FaultEvent::Restart(0)),
        ]);
        let mut n = Nemesis::new(s, 1);
        assert_eq!(n.next_due(), Some(10));
        let fired = n.advance(10);
        assert_eq!(fired.len(), 1);
        assert!(n.is_down(0));
        n.advance(25);
        assert!(!n.is_down(0));
        let summary = n.summary();
        assert_eq!(summary.crashes, 1);
        assert_eq!(summary.restarts, 1);
    }

    #[test]
    fn partition_blocks_cross_group_delivery_until_heal() {
        let s = NemesisSchedule::new(vec![
            (0, FaultEvent::Partition(vec![vec![0], vec![1, 2]])),
            (100, FaultEvent::Heal),
        ]);
        let mut n = Nemesis::new(s, 1);
        n.advance(0);
        assert!(!n.allows_delivery(0, 1));
        assert!(n.allows_delivery(1, 2));
        n.advance(100);
        assert!(n.allows_delivery(0, 1));
        assert_eq!(n.summary().dropped_partition, 1);
    }

    #[test]
    fn unlisted_processes_share_the_implicit_group() {
        let s = NemesisSchedule::new(vec![(0, FaultEvent::Partition(vec![vec![0]]))]);
        let mut n = Nemesis::new(s, 1);
        n.advance(0);
        assert!(!n.allows_delivery(0, 1));
        assert!(n.allows_delivery(1, 2), "unlisted processes stay connected");
    }

    #[test]
    fn lossy_link_drops_roughly_p() {
        let s = NemesisSchedule::new(vec![(
            0,
            FaultEvent::DropLink {
                from: 0,
                to: 1,
                p: 0.3,
            },
        )]);
        let mut n = Nemesis::new(s, 7);
        n.advance(0);
        let mut dropped = 0;
        for _ in 0..10_000 {
            if !n.allows_delivery(0, 1) {
                dropped += 1;
            }
            // The reverse direction is unaffected.
            assert!(n.allows_delivery(1, 0));
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&rate), "drop rate off: {rate}");
        assert_eq!(n.summary().dropped_link, dropped);
    }

    #[test]
    fn delay_spike_applies_at_send_time() {
        let s = NemesisSchedule::new(vec![(
            0,
            FaultEvent::DelaySpike {
                from: 2,
                to: 0,
                extra_us: 5_000,
            },
        )]);
        let mut n = Nemesis::new(s, 1);
        n.advance(0);
        assert_eq!(n.send_delay(2, 0), 5_000);
        assert_eq!(n.send_delay(0, 2), 0);
        assert_eq!(n.summary().delayed, 1);
    }

    #[test]
    fn presets_are_well_formed() {
        let config = Config::full(5, 2);
        let rolling = NemesisSchedule::rolling_crashes(config, 1_000, 10_000);
        // f = 2 sites, one crash + one restart each (single shard).
        assert_eq!(rolling.len(), 4);
        let split = NemesisSchedule::split_brain_and_heal(config, 10, 20);
        assert_eq!(split.len(), 2);
        let soak = NemesisSchedule::lossy_link_soak(config, 0.1, 0, 100);
        assert_eq!(soak.len(), 5 * 4 + 1);
        assert!(matches!(
            soak.events().last(),
            Some((100, FaultEvent::Heal))
        ));
    }

    #[test]
    fn slow_node_delays_only_its_sends_until_heal() {
        let s = NemesisSchedule::slow_node(1, 300_000, 10, 100);
        let mut n = Nemesis::new(s, 1);
        n.advance(10);
        assert_eq!(n.send_delay(1, 0), 300_000, "the slow node answers late");
        assert_eq!(n.send_delay(0, 1), 0, "traffic *to* it is unaffected");
        assert_eq!(n.slow_node_extra(1), Some(300_000));
        n.advance(100);
        assert_eq!(n.send_delay(1, 0), 0, "heal clears the gray fault");
        assert_eq!(n.summary().slow_nodes, 1);
        assert_eq!(n.summary().slowed, 1);
    }

    #[test]
    fn duplicate_and_reorder_draws_fire_roughly_p() {
        let s = NemesisSchedule::new(vec![
            (
                0,
                FaultEvent::DuplicateFrame {
                    from: 0,
                    to: 1,
                    p: 0.3,
                },
            ),
            (
                0,
                FaultEvent::ReorderFrame {
                    from: 1,
                    to: 0,
                    p: 0.3,
                },
            ),
        ]);
        let mut n = Nemesis::new(s, 11);
        n.advance(0);
        let mut dups = 0;
        let mut reorders = 0;
        for _ in 0..10_000 {
            if n.should_duplicate(0, 1) {
                dups += 1;
            }
            assert!(!n.should_duplicate(1, 0), "only the configured link");
            if let Some(extra) = n.reorder_delay(1, 0) {
                assert!(extra >= 500, "holdback must be non-zero");
                reorders += 1;
            }
            assert!(n.reorder_delay(0, 1).is_none());
        }
        for (name, count) in [("dup", dups), ("reorder", reorders)] {
            let rate = count as f64 / 10_000.0;
            assert!((0.25..0.35).contains(&rate), "{name} rate off: {rate}");
        }
        assert_eq!(n.summary().duplicated, dups);
        assert_eq!(n.summary().reordered, reorders);
        // Heal clears both.
        let mut healed = Nemesis::new(NemesisSchedule::new(vec![(5, FaultEvent::Heal)]), 1);
        healed.advance(5);
        assert!(!healed.should_duplicate(0, 1));
    }

    /// The random generator never aims a link-level incident (lossy link, delay spike,
    /// slow node, duplicate/reorder) at a process that is crashed-without-restart at
    /// that point in the schedule, and never re-crashes a dead site.
    #[test]
    fn random_never_targets_a_crashed_process() {
        for seed in 0..200 {
            let s = NemesisSchedule::random(&RandomNemesisOpts {
                config: Config::full(5, 2),
                horizon_us: 20_000_000,
                incidents: 8,
                seed,
            });
            let mut dead: BTreeSet<ProcessId> = BTreeSet::new();
            for (_, e) in s.events() {
                match e {
                    FaultEvent::Crash(p) => {
                        assert!(!dead.contains(p), "seed {seed}: re-crashed dead {p}");
                        dead.insert(*p);
                    }
                    FaultEvent::Restart(p) => {
                        dead.remove(p);
                    }
                    FaultEvent::DropLink { from, to, .. }
                    | FaultEvent::DelaySpike { from, to, .. }
                    | FaultEvent::DuplicateFrame { from, to, .. }
                    | FaultEvent::ReorderFrame { from, to, .. } => {
                        assert!(!dead.contains(from), "seed {seed}: link from dead {from}");
                        assert!(!dead.contains(to), "seed {seed}: link to dead {to}");
                    }
                    FaultEvent::SlowNode { process, .. } => {
                        assert!(
                            !dead.contains(process),
                            "seed {seed}: slowed dead {process}"
                        );
                    }
                    FaultEvent::Partition(_) | FaultEvent::Heal => {}
                }
            }
        }
    }

    #[test]
    fn random_schedules_are_deterministic_and_respect_crash_budget() {
        let opts = RandomNemesisOpts {
            config: Config::full(5, 1),
            horizon_us: 10_000_000,
            incidents: 4,
            seed: 42,
        };
        let a = NemesisSchedule::random(&opts);
        let b = NemesisSchedule::random(&opts);
        assert_eq!(a, b, "same seed, same schedule");
        for seed in 0..50 {
            let s = NemesisSchedule::random(&RandomNemesisOpts {
                seed,
                ..opts.clone()
            });
            let crashes = s
                .events()
                .iter()
                .filter(|(_, e)| matches!(e, FaultEvent::Crash(_)))
                .count();
            assert!(crashes <= 1, "seed {seed}: crash budget f=1 exceeded");
        }
    }
}
