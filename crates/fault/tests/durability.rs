//! The durability acceptance scenario (ISSUE 4): crash + restart with durable state.
//!
//! A replica crashes mid-run and restarts backed by a `FileStore`: the rebuilt process
//! replays its snapshot + WAL (pre-crash accepts and commits included), rejoins, and
//! back-fills the commands it slept through with the `MStateRequest`/`MState` transfer
//! — after which it serves *reads* again, and the whole run passes the history checker
//! under a read/write workload. The counterpart test removes both the store and the
//! state transfer and shows the checker catching the resulting stale reads — the
//! DESIGN.md §5 amnesia caveat, now demonstrable instead of merely documented.

use std::path::PathBuf;
use tempo_core::{Tempo, TempoOptions};
use tempo_fault::{FaultEvent, NemesisSchedule};
use tempo_kernel::Config;
use tempo_planet::Planet;
use tempo_sim::{run_with_factory, ProtocolFactory, RunReport, SimOpts};
use tempo_workload::RwConflict;

fn schedule() -> NemesisSchedule {
    NemesisSchedule::new(vec![
        (300_000, FaultEvent::Crash(0)),
        (900_000, FaultEvent::Restart(0)),
    ])
}

fn opts(seed: u64) -> SimOpts {
    SimOpts {
        clients_per_site: 2,
        commands_per_client: 12,
        seed,
        nemesis: Some(schedule()),
        client_timeout_us: Some(15_000_000),
        record_history: true,
        ..SimOpts::default()
    }
}

fn workload(seed: u64) -> RwConflict {
    // Heavy hot-key traffic with a read mix: the history checker gets plenty of
    // observations to falsify if the restarted replica serves a stale store.
    RwConflict::new(0.6, 0.5, 16, seed)
}

fn run_scenario(seed: u64, factory: ProtocolFactory<Tempo>) -> RunReport {
    let config = Config::full(3, 1);
    let report = run_with_factory::<Tempo, _>(
        config,
        Planet::equidistant(3, 50.0),
        opts(seed),
        workload(seed),
        factory,
    );
    assert!(!report.stalled, "run stalled: {}", report.summary());
    assert_eq!(
        report.completed + report.aborted,
        3 * 2 * 12,
        "every command must be accounted for: {}",
        report.summary()
    );
    report
}

fn filestore_factory(root: PathBuf, options: TempoOptions) -> ProtocolFactory<Tempo> {
    Box::new(move |id, shard, config, _incarnation| {
        // Re-opening the same directory replays the previous incarnation's snapshot
        // and WAL — this is the durable half the crash does not destroy.
        let store = tempo_store::FileStore::open(root.join(format!("p{id}")))
            .expect("open per-replica store");
        Tempo::with_store(id, shard, config, options, Box::new(store))
    })
}

/// Acceptance: a FileStore-backed crash + restart passes the checker under a
/// read/write workload, with the restarted replica executing (and answering reads for)
/// commands again — its store rebuilt from pre-crash accepts plus the state transfer.
#[test]
fn filestore_restart_serves_fresh_reads_and_passes_the_checker() {
    let seed = 31;
    let root = std::env::temp_dir().join(format!("tempo-durability-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let options = TempoOptions {
        // Small enough that the run exercises snapshot + WAL-suffix recovery, not
        // just WAL replay.
        snapshot_every_appends: 64,
        ..TempoOptions::default()
    };
    let report = run_scenario(seed, filestore_factory(root.clone(), options));
    let history = report.history.as_ref().expect("history recorded");
    if let Err(violation) = history.check() {
        panic!(
            "durable restart must stay safe: {violation}\n{}",
            report.summary()
        );
    }
    assert_eq!(report.faults.crashes, 1);
    assert_eq!(report.faults.restarts, 1);
    assert!(
        report.metrics.wal_appends > 0,
        "the WAL must have been written: {}",
        report.summary()
    );
    assert!(
        report.metrics.snapshots_taken > 0,
        "snapshot pacing must have fired: {}",
        report.summary()
    );
    // The restarted incarnation executes commands again — including reads, which it
    // could not serve safely without the recovered + transferred state.
    let post_restart = history.executed_by_incarnation(0, 1);
    assert!(
        !post_restart.is_empty(),
        "the restarted replica must execute commands: {}",
        report.summary()
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The contrast run: same seed, same schedule, same workload — but the restart comes
/// back diskless (a fresh `MemStore`-less instance) and with the state transfer
/// disabled. The restarted replica then serves reads from a store that misses every
/// pre-crash command, and the checker must catch the stale reads.
#[test]
fn diskless_restart_without_state_transfer_serves_stale_reads() {
    let seed = 31;
    let options = TempoOptions {
        state_transfer: false,
        ..TempoOptions::default()
    };
    let factory: ProtocolFactory<Tempo> = Box::new(move |id, shard, config, _incarnation| {
        Tempo::with_options(id, shard, config, options)
    });
    let report = run_scenario(seed, factory);
    let history = report.history.as_ref().expect("history recorded");
    assert!(
        history.check().is_err(),
        "a diskless, transfer-less restart must be caught serving stale reads \
         (if this starts passing, the scenario no longer reads the hot key at the \
         restarted replica — retune the seed): {}",
        report.summary()
    );
    assert_eq!(report.metrics.wal_appends, 0, "no store, no WAL");
}

/// Durable state alone (WAL replay, no state transfer) closes only half the gap: the
/// replica remembers everything *it* saw, but not what it slept through. This run
/// keeps the store and disables the transfer — pre-crash state is back (unlike the
/// diskless run it does not forget its own commits), yet commands committed while it
/// was down are missing, and `exec_skipped`-style gaps remain possible. The checker
/// verdict depends on timing, so this test only asserts the recovery accounting —
/// the two tests above pin the observable extremes.
#[test]
fn memstore_restart_preserved_by_the_factory_recovers_its_own_commits() {
    let seed = 31;
    // One shared MemStore handle per process, captured by the factory: the simulated
    // disk. (A fresh MemStore per incarnation would be the diskless run above.)
    let stores: Vec<tempo_store::MemStore> = (0..3).map(|_| tempo_store::MemStore::new()).collect();
    let factory: ProtocolFactory<Tempo> = Box::new(move |id, shard, config, _incarnation| {
        Tempo::with_store(
            id,
            shard,
            config,
            TempoOptions::default(),
            Box::new(stores[id as usize].clone()),
        )
    });
    let report = run_scenario(seed, factory);
    let history = report.history.as_ref().expect("history recorded");
    if let Err(violation) = history.check() {
        panic!(
            "MemStore-backed restart with state transfer must stay safe: {violation}\n{}",
            report.summary()
        );
    }
    assert!(report.metrics.wal_appends > 0);
    assert!(!history.executed_by_incarnation(0, 1).is_empty());
}
