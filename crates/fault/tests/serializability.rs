//! Adversarial suite for the cross-key strict serializability checker.
//!
//! Three layers, from hand-crafted to end-to-end:
//!
//! 1. **Anomaly corpus** — hand-written multi-key histories with the classic defects
//!    (write skew, fractured read, lost update, cross-key order disagreement, stale
//!    multi-key read), each rejected with the *expected* minimal cycle; clean
//!    histories (serial, concurrent, pending, aborted) pass. A seeded generator adds
//!    defect-free histories (no false positives) and value-mutated ones (no false
//!    negatives) at scale.
//! 2. **Mutation battery** — a test-only [`BrokenShim`] protocol wrapper runs a real
//!    Tempo cluster (two shards through `LocalCluster`) but re-executes multi-key
//!    commands on one replica from a shadow store in a deliberately perturbed order
//!    (swapped pairs, or duplicated application with the second result reported).
//!    Every seeded mutation must surface as a `NotSerializable` cycle — checker
//!    *sensitivity*, where the corpus's clean histories prove specificity.
//! 3. **Property tests** — multi-shard YCSB+T sim runs at f=1 and f=2 under
//!    `NemesisSchedule::random` all pass the checker, and same-seed runs produce
//!    byte-identical verdicts (the checker is deterministic end to end).

use std::collections::{BTreeMap, BTreeSet};
use tempo_core::Tempo;
use tempo_fault::serializability::EdgeKind;
use tempo_fault::{History, NemesisSchedule, RandomNemesisOpts, Violation};
use tempo_kernel::command::{Command, KVOp, Key};
use tempo_kernel::config::Config;
use tempo_kernel::harness::LocalCluster;
use tempo_kernel::id::{ProcessId, Rifl, ShardId};
use tempo_kernel::kvstore::KVStore;
use tempo_kernel::protocol::{Action, Executed, Protocol, ProtocolMetrics, TimerId, View};
use tempo_kernel::rand::Rng;
use tempo_planet::Planet;
use tempo_sim::{run, SimOpts};
use tempo_workload::YcsbT;

// ---------------------------------------------------------------------------------
// Anomaly corpus: hand-written histories with known defects.
// ---------------------------------------------------------------------------------

/// Unwraps the serializability cycle or panics with the actual verdict.
fn expect_cycle(h: &History) -> Vec<tempo_fault::CycleEdge> {
    match h.check() {
        Err(Violation::NotSerializable { cycle }) => {
            assert!(!cycle.is_empty(), "a cycle has at least two edges");
            cycle
        }
        other => panic!("expected a serializability cycle, got {other:?}"),
    }
}

/// The Rifls around the cycle, as a set.
fn cycle_rifls(cycle: &[tempo_fault::CycleEdge]) -> BTreeSet<Rifl> {
    cycle.iter().flat_map(|e| [e.from, e.to]).collect()
}

#[test]
fn write_skew_is_rejected_with_the_expected_cycle() {
    // T1 reads x (absent) and writes y; T2 reads y (absent) and writes x. Each claims
    // to precede the other's write: two initial-read edges close the cycle.
    let mut h = History::new();
    let t1 = Rifl::new(1, 1);
    let t2 = Rifl::new(2, 1);
    h.record_invoke(
        t1,
        Command::new(t1, vec![(0, 1, KVOp::Get), (0, 2, KVOp::Put(7))], 0),
        0,
    );
    h.record_invoke(
        t2,
        Command::new(t2, vec![(0, 2, KVOp::Get), (0, 1, KVOp::Put(7))], 0),
        0,
    );
    h.record_complete(t1, 100, vec![(0, 1, None), (0, 2, Some(7))]);
    h.record_complete(t2, 100, vec![(0, 2, None), (0, 1, Some(7))]);
    let cycle = expect_cycle(&h);
    assert_eq!(cycle.len(), 2, "minimal cycle: {cycle:?}");
    assert_eq!(cycle_rifls(&cycle), BTreeSet::from([t1, t2]));
    assert!(
        cycle
            .iter()
            .all(|e| matches!(e.kind, EdgeKind::InitialRead { .. })),
        "write skew is two initial-read edges: {cycle:?}"
    );
}

#[test]
fn fractured_read_is_rejected_with_the_expected_cycle() {
    // W atomically writes x and y; R observes W's x but y still absent — it reads
    // "between" the halves of an atomic write.
    let mut h = History::new();
    let w = Rifl::new(1, 1);
    let r = Rifl::new(2, 1);
    h.record_invoke(
        w,
        Command::new(w, vec![(0, 1, KVOp::Put(1)), (1, 5, KVOp::Put(1))], 0),
        0,
    );
    h.record_complete(w, 100, vec![(0, 1, Some(1)), (1, 5, Some(1))]);
    h.record_invoke(
        r,
        Command::new(r, vec![(0, 1, KVOp::Get), (1, 5, KVOp::Get)], 0),
        200,
    );
    h.record_complete(r, 300, vec![(0, 1, Some(1)), (1, 5, None)]);
    let cycle = expect_cycle(&h);
    assert_eq!(cycle.len(), 2, "minimal cycle: {cycle:?}");
    assert_eq!(cycle_rifls(&cycle), BTreeSet::from([w, r]));
    assert!(
        cycle
            .iter()
            .any(|e| matches!(e.kind, EdgeKind::InitialRead { shard: 1, key: 5 })),
        "the stale half pins R before W: {cycle:?}"
    );
}

#[test]
fn lost_update_is_rejected_with_the_expected_cycle() {
    // Both T1 and T2 read-modify-write x from the same base value 5: one update is
    // lost. Two overwrite edges (both consumed state 5) close the cycle.
    let mut h = History::new();
    let setup = Rifl::new(1, 1);
    let t1 = Rifl::new(2, 1);
    let t2 = Rifl::new(3, 1);
    h.record_invoke(
        setup,
        Command::new(setup, vec![(0, 1, KVOp::Put(5)), (0, 2, KVOp::Put(9))], 0),
        0,
    );
    h.record_complete(setup, 10, vec![(0, 1, Some(5)), (0, 2, Some(9))]);
    for (t, inv) in [(t1, 20), (t2, 21)] {
        h.record_invoke(
            t,
            Command::new(t, vec![(0, 1, KVOp::Add(1)), (0, 2, KVOp::Get)], 0),
            inv,
        );
        h.record_complete(t, 100, vec![(0, 1, Some(6)), (0, 2, Some(9))]);
    }
    let cycle = expect_cycle(&h);
    assert_eq!(cycle.len(), 2, "minimal cycle: {cycle:?}");
    assert_eq!(cycle_rifls(&cycle), BTreeSet::from([t1, t2]));
    assert!(
        cycle
            .iter()
            .all(|e| matches!(e.kind, EdgeKind::Overwrite { shard: 0, key: 1 })),
        "lost update is two overwrite edges on the contended key: {cycle:?}"
    );
}

#[test]
fn cross_key_order_disagreement_is_rejected_with_the_expected_cycle() {
    // Wa then Wb each bump x and y; the reader observes x *after* Wb but y *before*
    // Wb — the two keys disagree about where the reader serializes.
    let mut h = History::new();
    let wa = Rifl::new(1, 1);
    let wb = Rifl::new(1, 2);
    let r = Rifl::new(2, 1);
    h.record_invoke(
        wa,
        Command::new(wa, vec![(0, 1, KVOp::Add(1)), (0, 2, KVOp::Add(1))], 0),
        0,
    );
    h.record_complete(wa, 10, vec![(0, 1, Some(1)), (0, 2, Some(1))]);
    h.record_invoke(
        wb,
        Command::new(wb, vec![(0, 1, KVOp::Add(1)), (0, 2, KVOp::Add(1))], 0),
        20,
    );
    h.record_complete(wb, 30, vec![(0, 1, Some(2)), (0, 2, Some(2))]);
    // The reader overlaps both writers in real time, so per-key linearizability holds
    // for each key alone; only the cross-key view exposes the contradiction.
    h.record_invoke(
        r,
        Command::new(r, vec![(0, 1, KVOp::Get), (0, 2, KVOp::Get)], 0),
        5,
    );
    h.record_complete(r, 40, vec![(0, 1, Some(2)), (0, 2, Some(1))]);
    let cycle = expect_cycle(&h);
    assert_eq!(cycle.len(), 2, "minimal cycle: {cycle:?}");
    assert_eq!(cycle_rifls(&cycle), BTreeSet::from([wb, r]));
    let kinds: BTreeSet<&str> = cycle
        .iter()
        .map(|e| match e.kind {
            EdgeKind::ReadFrom { .. } => "read-from",
            EdgeKind::Overwrite { .. } => "overwrite",
            other => panic!("unexpected edge kind {other:?}"),
        })
        .collect();
    assert_eq!(kinds, BTreeSet::from(["read-from", "overwrite"]));
}

#[test]
fn stale_multi_key_read_is_rejected_with_the_expected_cycle() {
    // The chain on x reached 2 before R was even invoked, yet R observes 1: real time
    // pins T2 before R, the observed value pins R before T2.
    let mut h = History::new();
    let t1 = Rifl::new(1, 1);
    let t2 = Rifl::new(1, 2);
    let r = Rifl::new(2, 1);
    for (t, inv, res, out) in [(t1, 0u64, 10u64, 1u64), (t2, 20, 30, 2)] {
        h.record_invoke(
            t,
            Command::new(t, vec![(0, 1, KVOp::Add(1)), (1, 7, KVOp::Get)], 0),
            inv,
        );
        h.record_complete(t, res, vec![(0, 1, Some(out)), (1, 7, None)]);
    }
    h.record_invoke(
        r,
        Command::new(r, vec![(0, 1, KVOp::Get), (1, 7, KVOp::Get)], 0),
        50,
    );
    h.record_complete(r, 60, vec![(0, 1, Some(1)), (1, 7, None)]);
    let cycle = expect_cycle(&h);
    assert_eq!(cycle.len(), 2, "minimal cycle: {cycle:?}");
    assert_eq!(cycle_rifls(&cycle), BTreeSet::from([t2, r]));
    assert!(
        cycle
            .iter()
            .any(|e| matches!(e.kind, EdgeKind::RealTime { shard: 0, key: 1 })),
        "real time must participate: {cycle:?}"
    );
    assert!(
        cycle
            .iter()
            .any(|e| matches!(e.kind, EdgeKind::Overwrite { shard: 0, key: 1 })),
        "the stale value must participate: {cycle:?}"
    );
}

#[test]
fn clean_multi_key_histories_pass() {
    // Serial multi-key writers and a consistent reader; plus a pending and an aborted
    // command (optional effects must not be forced into the order).
    let mut h = History::new();
    let w1 = Rifl::new(1, 1);
    let w2 = Rifl::new(1, 2);
    let r = Rifl::new(2, 1);
    let pending = Rifl::new(3, 1);
    let aborted = Rifl::new(4, 1);
    for (w, inv, res, out) in [(w1, 0u64, 10u64, 1u64), (w2, 20, 30, 2)] {
        h.record_invoke(
            w,
            Command::new(w, vec![(0, 1, KVOp::Add(1)), (1, 5, KVOp::Add(1))], 0),
            inv,
        );
        h.record_complete(w, res, vec![(0, 1, Some(out)), (1, 5, Some(out))]);
    }
    h.record_invoke(
        r,
        Command::new(r, vec![(0, 1, KVOp::Get), (1, 5, KVOp::Get)], 0),
        40,
    );
    h.record_complete(r, 50, vec![(0, 1, Some(2)), (1, 5, Some(2))]);
    h.record_invoke(
        pending,
        Command::new(pending, vec![(0, 1, KVOp::Add(1)), (0, 9, KVOp::Put(3))], 0),
        45,
    );
    h.record_invoke(
        aborted,
        Command::new(aborted, vec![(1, 5, KVOp::Add(1)), (1, 6, KVOp::Put(4))], 0),
        45,
    );
    h.record_abort(aborted);
    let summary = h.check().expect("clean multi-key history");
    assert_eq!(summary.multi_key_commands, 5);
    assert_eq!(summary.ser_txns, 5);
    assert!(summary.ser_edges > 0, "the graph must not be empty");
}

#[test]
fn single_key_histories_skip_the_graph() {
    let mut h = History::new();
    for i in 1..=4u64 {
        let r = Rifl::new(1, i);
        h.record_invoke(r, Command::single(r, 0, 0, KVOp::Add(1), 0), i * 100);
        h.record_complete(r, i * 100 + 50, vec![(0, 0, Some(i))]);
    }
    let summary = h.check().expect("single-key history");
    assert_eq!(summary.multi_key_commands, 0, "fast path must apply");
    assert_eq!(summary.ser_txns, 0, "the graph must not even be built");
    assert_eq!(summary.ser_edges, 0);
}

// ---------------------------------------------------------------------------------
// Generated corpus: serializable histories pass, value-mutated ones are cycles.
// ---------------------------------------------------------------------------------

/// Generates a genuinely serial multi-key history (executed against a real `KVStore`)
/// whose client windows overlap, so the checker sees concurrency but no anomaly.
fn generated_history(seed: u64, txns: u64) -> History {
    let mut h = History::new();
    let mut rng = Rng::new(seed);
    let mut stores: BTreeMap<ShardId, KVStore> = BTreeMap::new();
    for i in 0..txns {
        let client = 1 + (i % 4);
        let rifl = Rifl::new(client, 1 + i / 4);
        let mut ops: Vec<(ShardId, Key, KVOp)> = Vec::new();
        for _ in 0..2 {
            let shard = rng.gen_range(2);
            let key = rng.gen_range(6);
            if ops.iter().any(|(s, k, _)| *s == shard && *k == key) {
                continue;
            }
            let op = if rng.gen_bool(0.6) {
                KVOp::Add(1)
            } else {
                KVOp::Get
            };
            ops.push((shard, key, op));
        }
        if ops.is_empty() {
            continue;
        }
        let cmd = Command::new(rifl, ops, 0);
        let inv = i * 10;
        h.record_invoke(rifl, cmd.clone(), inv);
        let mut outputs = Vec::new();
        for shard in cmd.shards() {
            let store = stores.entry(shard).or_default();
            for (key, out) in store.execute(shard, &cmd).outputs {
                outputs.push((shard, key, out));
            }
        }
        // Completion long after the next few invocations: overlapping windows.
        h.record_complete(rifl, inv + 35, outputs);
    }
    h
}

#[test]
fn generated_serializable_histories_pass() {
    for seed in 0..20u64 {
        let h = generated_history(seed, 48);
        if let Err(v) = h.check() {
            panic!("seed {seed}: false positive: {v}");
        }
    }
}

#[test]
fn generated_histories_with_mutated_values_are_rejected_with_cycles() {
    // Every command bumps the hot key; rewriting one victim's hot-key output to its
    // predecessor's duplicates an entry state — a guaranteed overwrite cycle.
    for seed in 0..10u64 {
        let mut h = History::new();
        let mut rng = Rng::new(seed);
        let mut side: BTreeMap<Key, u64> = BTreeMap::new();
        let n = 16u64;
        let victim = 3 + rng.gen_range(n - 4);
        for i in 0..n {
            let rifl = Rifl::new(1 + (i % 4), 1 + i / 4);
            let other = 1 + rng.gen_range(5);
            let cmd = Command::new(
                rifl,
                vec![(0, 0, KVOp::Add(1)), (1, other, KVOp::Add(1))],
                0,
            );
            let inv = i * 10;
            h.record_invoke(rifl, cmd, inv);
            // The victim reports its predecessor's value: a duplicated state.
            let hot = if i == victim { i } else { i + 1 };
            let side_out = side.entry(other).and_modify(|v| *v += 1).or_insert(1);
            h.record_complete(
                rifl,
                inv + 35,
                vec![(0, 0, Some(hot)), (1, other, Some(*side_out))],
            );
        }
        match h.check() {
            Err(Violation::NotSerializable { cycle }) => {
                assert!(!cycle.is_empty(), "seed {seed}: cycle must be reported")
            }
            other => panic!("seed {seed}: mutation must be caught with a cycle, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------------
// Mutation battery: BrokenShim over a real two-shard Tempo cluster.
// ---------------------------------------------------------------------------------

/// How the broken replica perturbs execution of multi-key commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Buffer a multi-key command and apply it *after* the next command, swapped.
    Reorder,
    /// Apply a multi-key command twice: once in place (result discarded), once after
    /// the next command (that second result is what the client sees).
    Duplicate,
}

/// A test-only protocol wrapper: delegates ordering to the inner protocol untouched,
/// but on one designated replica re-executes delivered commands against a private
/// shadow store in a deliberately perturbed order, replacing the reported outputs.
/// The rest of the cluster stays honest, so the recorded client history mixes honest
/// and lying observations — exactly what the serializability checker must catch.
struct BrokenShim<P: Protocol> {
    inner: P,
    broken: bool,
    mode: Mode,
    rng: Rng,
    shadow: KVStore,
    cmds: BTreeMap<Rifl, Command>,
    /// `Reorder`: a buffered command awaiting the swap partner.
    held: Option<Rifl>,
    /// `Duplicate`: a command applied once, to be re-applied (and reported) after the
    /// next delivery.
    dup_pending: Option<Rifl>,
    /// Multi-key commands seen so far (the first is always mutated, so a run can
    /// never be mutation-free).
    seen_multi: u64,
    mutations: u64,
}

impl<P: Protocol> BrokenShim<P> {
    fn make(
        process: ProcessId,
        shard: ShardId,
        config: Config,
        broken: bool,
        mode: Mode,
        seed: u64,
    ) -> Self {
        Self {
            inner: P::new(process, shard, config),
            broken,
            mode,
            rng: Rng::new(seed),
            shadow: KVStore::new(),
            cmds: BTreeMap::new(),
            held: None,
            dup_pending: None,
            seen_multi: 0,
            mutations: 0,
        }
    }

    fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Executes `rifl` against the shadow store and emits its (possibly lying)
    /// delivery.
    fn exec_shadow(&mut self, rifl: Rifl) -> Action<P::Message> {
        let cmd = self
            .cmds
            .get(&rifl)
            .expect("the battery submits every command at the broken replica");
        let result = self.shadow.execute(self.inner.shard(), cmd);
        Action::Deliver(Executed { rifl, result })
    }

    fn deliver(&mut self, ex: Executed) -> Vec<Action<P::Message>> {
        let Some(cmd) = self.cmds.get(&ex.rifl) else {
            // Not submitted here (recovered elsewhere): pass through honestly. The
            // battery never exercises this path.
            return vec![Action::Deliver(ex)];
        };
        let multi = cmd.keys().collect::<BTreeSet<_>>().len() > 1;
        let mut out = Vec::new();
        if let Some(partner) = self.held.take() {
            // Swap: the newcomer executes first, the buffered command second.
            out.push(self.exec_shadow(ex.rifl));
            out.push(self.exec_shadow(partner));
            self.mutations += 1;
            return out;
        }
        if let Some(dup) = self.dup_pending.take() {
            out.push(self.exec_shadow(ex.rifl));
            // Second application of the duplicate; this result is the reported one.
            out.push(self.exec_shadow(dup));
            self.mutations += 1;
            return out;
        }
        let mutate = multi && (self.seen_multi == 0 || self.rng.gen_bool(0.4));
        self.seen_multi += multi as u64;
        if mutate {
            match self.mode {
                Mode::Reorder => self.held = Some(ex.rifl),
                Mode::Duplicate => {
                    // First application: effects land, the result is discarded.
                    let cmd = self.cmds[&ex.rifl].clone();
                    let _ = self.shadow.execute(self.inner.shard(), &cmd);
                    self.dup_pending = Some(ex.rifl);
                }
            }
            return out;
        }
        out.push(self.exec_shadow(ex.rifl));
        out
    }

    fn rewrite(&mut self, actions: Vec<Action<P::Message>>) -> Vec<Action<P::Message>> {
        if !self.broken {
            return actions;
        }
        let mut out = Vec::new();
        for action in actions {
            match action {
                Action::Deliver(ex) => out.extend(self.deliver(ex)),
                other => out.push(other),
            }
        }
        out
    }
}

impl<P: Protocol> Protocol for BrokenShim<P> {
    type Message = P::Message;
    type Executor = P::Executor;
    const NAME: &'static str = "BrokenShim";

    fn new(process: ProcessId, shard: ShardId, config: Config) -> Self {
        Self::make(process, shard, config, false, Mode::Reorder, 0)
    }

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn shard(&self) -> ShardId {
        self.inner.shard()
    }

    fn discover(&mut self, view: View) -> Vec<Action<Self::Message>> {
        let actions = self.inner.discover(view);
        self.rewrite(actions)
    }

    fn submit(&mut self, cmd: Command, now_us: u64) -> Vec<Action<Self::Message>> {
        self.cmds.insert(cmd.rifl, cmd.clone());
        let actions = self.inner.submit(cmd, now_us);
        self.rewrite(actions)
    }

    fn handle(
        &mut self,
        from: ProcessId,
        msg: Self::Message,
        now_us: u64,
    ) -> Vec<Action<Self::Message>> {
        let actions = self.inner.handle(from, msg, now_us);
        self.rewrite(actions)
    }

    fn timer(&mut self, timer: TimerId, now_us: u64) -> Vec<Action<Self::Message>> {
        let actions = self.inner.timer(timer, now_us);
        self.rewrite(actions)
    }

    fn suspect(&mut self, process: ProcessId) {
        self.inner.suspect(process);
    }

    fn unsuspect(&mut self, process: ProcessId) {
        self.inner.unsuspect(process);
    }

    fn rejoin(&mut self, incarnation: u64, now_us: u64) -> Vec<Action<Self::Message>> {
        let actions = self.inner.rejoin(incarnation, now_us);
        self.rewrite(actions)
    }

    fn executor(&self) -> &Self::Executor {
        self.inner.executor()
    }

    fn metrics(&self) -> ProtocolMetrics {
        self.inner.metrics()
    }
}

/// The broken replica: process 0 (site 0, shard 0).
const BROKEN: ProcessId = 0;

/// Runs one battery round: serial multi-shard commands through a two-shard Tempo
/// cluster with the shim breaking shard 0's replica at process 0, client history
/// recorded from the (partially lying) outputs. Returns the verdict and how many
/// mutations the shim performed.
fn battery_run(mode: Mode, seed: u64) -> (Result<tempo_fault::CheckSummary, Violation>, u64) {
    let config = Config::new(3, 1, 2);
    let mut cluster: LocalCluster<BrokenShim<Tempo>> = LocalCluster::from_protocols(
        config,
        |p| View::trivial(config, p),
        |id, shard| BrokenShim::make(id, shard, config, id == BROKEN, mode, seed),
    );
    let mut rng = Rng::new(seed ^ 0x5EED);
    let mut cmds = Vec::new();
    let n = 8u64;
    for i in 1..=n {
        let rifl = Rifl::new(1, i);
        // Every command bumps the hot key 0 of shard 0 (so any two commands
        // conflict), a second shard-0 key, and a shard-1 key (honest replica).
        let k2 = 1 + rng.gen_range(4);
        let k3 = rng.gen_range(4);
        let cmd = Command::new(
            rifl,
            vec![
                (0, 0, KVOp::Add(1)),
                (0, k2, KVOp::Add(1)),
                (1, k3, KVOp::Add(1)),
            ],
            0,
        );
        cmds.push(cmd.clone());
        cluster.submit(BROKEN, cmd);
        cluster.tick_all(5_000);
    }
    // A single-key trailing command on the hot key flushes any buffered mutation
    // (single-key: the shim never buffers it, but it conflicts with everything).
    let flush = Rifl::new(1, n + 1);
    let fcmd = Command::single(flush, 0, 0, KVOp::Add(1), 0);
    cmds.push(fcmd.clone());
    cluster.submit(BROKEN, fcmd);
    for _ in 0..10 {
        cluster.tick_all(5_000);
    }
    let shard0: BTreeMap<Rifl, Vec<(Key, Option<u64>)>> = cluster
        .executed(BROKEN)
        .into_iter()
        .map(|e| (e.rifl, e.result.outputs))
        .collect();
    let shard1: BTreeMap<Rifl, Vec<(Key, Option<u64>)>> = cluster
        .executed(3)
        .into_iter()
        .map(|e| (e.rifl, e.result.outputs))
        .collect();
    // Fabricated serial client timestamps: command i completed before i+1 was
    // invoked, which is exactly what a synchronous client observed.
    let mut history = History::new();
    for (i, cmd) in cmds.iter().enumerate() {
        let inv = i as u64 * 1_000;
        history.record_invoke(cmd.rifl, cmd.clone(), inv);
        let mut outputs = Vec::new();
        let mut complete = true;
        for shard in cmd.shards() {
            let map = if shard == 0 { &shard0 } else { &shard1 };
            match map.get(&cmd.rifl) {
                Some(outs) => outputs.extend(outs.iter().map(|(k, v)| (shard, *k, *v))),
                None => complete = false,
            }
        }
        assert!(
            complete,
            "seed {seed}: {} must execute on every shard",
            cmd.rifl
        );
        history.record_complete(cmd.rifl, inv + 500, outputs);
    }
    (history.check(), cluster.process(BROKEN).mutations())
}

#[test]
fn broken_shim_reorder_mutations_are_flagged_across_seeds() {
    for seed in 1..=10u64 {
        let (verdict, mutations) = battery_run(Mode::Reorder, seed);
        assert!(mutations >= 1, "seed {seed}: the shim must have mutated");
        match verdict {
            Err(Violation::NotSerializable { cycle }) => {
                assert!(!cycle.is_empty(), "seed {seed}: cycle must be reported")
            }
            other => panic!("seed {seed}: reorder must be caught with a cycle, got {other:?}"),
        }
    }
}

#[test]
fn broken_shim_duplicate_mutations_are_flagged_across_seeds() {
    for seed in 1..=10u64 {
        let (verdict, mutations) = battery_run(Mode::Duplicate, seed);
        assert!(mutations >= 1, "seed {seed}: the shim must have mutated");
        match verdict {
            Err(Violation::NotSerializable { cycle }) => {
                assert!(!cycle.is_empty(), "seed {seed}: cycle must be reported")
            }
            other => panic!("seed {seed}: duplicate must be caught with a cycle, got {other:?}"),
        }
    }
}

#[test]
fn honest_shim_run_passes() {
    // Control: the same harness with no broken replica produces a passing history.
    let config = Config::new(3, 1, 2);
    let mut cluster: LocalCluster<BrokenShim<Tempo>> = LocalCluster::from_protocols(
        config,
        |p| View::trivial(config, p),
        |id, shard| BrokenShim::make(id, shard, config, false, Mode::Reorder, 7),
    );
    let mut history = History::new();
    let mut cmds = Vec::new();
    for i in 1..=6u64 {
        let rifl = Rifl::new(1, i);
        let cmd = Command::new(rifl, vec![(0, 0, KVOp::Add(1)), (1, 1, KVOp::Add(1))], 0);
        cmds.push(cmd.clone());
        cluster.submit(BROKEN, cmd);
        cluster.tick_all(5_000);
    }
    for _ in 0..10 {
        cluster.tick_all(5_000);
    }
    let shard0: BTreeMap<Rifl, Vec<(Key, Option<u64>)>> = cluster
        .executed(BROKEN)
        .into_iter()
        .map(|e| (e.rifl, e.result.outputs))
        .collect();
    let shard1: BTreeMap<Rifl, Vec<(Key, Option<u64>)>> = cluster
        .executed(3)
        .into_iter()
        .map(|e| (e.rifl, e.result.outputs))
        .collect();
    for (i, cmd) in cmds.iter().enumerate() {
        let inv = i as u64 * 1_000;
        history.record_invoke(cmd.rifl, cmd.clone(), inv);
        let mut outputs = Vec::new();
        for shard in cmd.shards() {
            let map = if shard == 0 { &shard0 } else { &shard1 };
            let outs = map.get(&cmd.rifl).expect("executed everywhere");
            outputs.extend(outs.iter().map(|(k, v)| (shard, *k, *v)));
        }
        history.record_complete(cmd.rifl, inv + 500, outputs);
    }
    let summary = history.check().expect("honest run must pass");
    assert!(summary.ser_txns > 0, "the graph must have run");
}

// ---------------------------------------------------------------------------------
// Property tests: multi-shard sim chaos through the checker, plus determinism.
// ---------------------------------------------------------------------------------

fn chaos_opts(schedule: NemesisSchedule, seed: u64) -> SimOpts {
    SimOpts {
        clients_per_site: 2,
        commands_per_client: 5,
        seed,
        nemesis: Some(schedule),
        client_timeout_us: Some(15_000_000),
        record_history: true,
        ..SimOpts::default()
    }
}

fn random_multi_shard_run(config: Config, seed: u64) -> tempo_sim::RunReport {
    let schedule = NemesisSchedule::random(&RandomNemesisOpts {
        config,
        horizon_us: 800_000,
        incidents: 3,
        seed,
    });
    run::<Tempo, _>(
        config,
        Planet::equidistant(config.n(), 50.0),
        chaos_opts(schedule, seed),
        YcsbT::new(2, 16, 0.6, 0.5, seed),
    )
}

#[test]
fn random_nemesis_multi_shard_f1_histories_are_serializable() {
    for seed in [201u64, 202, 203, 204, 205] {
        let config = Config::new(3, 1, 2);
        let report = random_multi_shard_run(config, seed);
        assert!(!report.stalled, "seed {seed}: {}", report.summary());
        let history = report.history.as_ref().expect("history recorded");
        let summary = history
            .check()
            .unwrap_or_else(|v| panic!("seed {seed}: {v}\n{}", report.summary()));
        assert!(
            summary.multi_key_commands > 0,
            "seed {seed}: YCSB+T is multi-key"
        );
        assert!(summary.ser_txns > 0, "seed {seed}: the graph must have run");
    }
}

#[test]
fn random_nemesis_multi_shard_f2_histories_are_serializable() {
    for seed in [301u64, 302, 303] {
        let config = Config::new(5, 2, 2);
        let report = random_multi_shard_run(config, seed);
        assert!(!report.stalled, "seed {seed}: {}", report.summary());
        let history = report.history.as_ref().expect("history recorded");
        let summary = history
            .check()
            .unwrap_or_else(|v| panic!("seed {seed}: {v}\n{}", report.summary()));
        assert!(
            summary.multi_key_commands > 0,
            "seed {seed}: YCSB+T is multi-key"
        );
        assert!(summary.ser_txns > 0, "seed {seed}: the graph must have run");
    }
}

#[test]
fn same_seed_gives_byte_identical_verdict_and_cycle_report() {
    // A passing sim verdict...
    let config = Config::new(3, 1, 2);
    let a = random_multi_shard_run(config, 777);
    let b = random_multi_shard_run(config, 777);
    let va = format!("{:?}", a.history.as_ref().expect("history").check());
    let vb = format!("{:?}", b.history.as_ref().expect("history").check());
    assert_eq!(va, vb, "same seed must give the same verdict");
    // ...and a failing battery verdict, cycle report included.
    let (v1, m1) = battery_run(Mode::Reorder, 42);
    let (v2, m2) = battery_run(Mode::Reorder, 42);
    assert_eq!(m1, m2, "same seed must mutate identically");
    assert_eq!(
        format!("{v1:?}"),
        format!("{v2:?}"),
        "same seed must give a byte-identical cycle report"
    );
    assert!(matches!(v1, Err(Violation::NotSerializable { .. })));
}
