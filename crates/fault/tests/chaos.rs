//! Chaos integration suite: nemesis schedules driven through `tempo-sim`, judged by the
//! history checker.
//!
//! These are the tests the ROADMAP's "as many scenarios as you can imagine" axis hangs
//! off: every preset of `tempo_fault::nemesis` runs against Tempo, plus a battery of
//! seeded random schedules (f = 1 and f = 2). Each run must terminate (clients abort
//! commands stranded by faults instead of hanging) and its recorded history must pass
//! per-key linearizability, replica agreement and at-most-once execution.
//!
//! Restart-bearing schedules run `RwConflict` (reads included) like everything else:
//! since the rejoin state transfer (`MStateRequest`/`MState`, DESIGN.md §6), a
//! restarted replica — durable store or not — gates execution until a peer's applied
//! image installs, so the reads it serves are fresh. The write-only restriction that
//! previously hid the amnesia gap is gone; `tests/durability.rs` keeps one
//! deliberately transfer-less run to show the checker catching that gap.

use tempo_core::Tempo;
use tempo_fault::{History, NemesisSchedule, RandomNemesisOpts};
use tempo_kernel::id::Rifl;
use tempo_kernel::Config;
use tempo_planet::Planet;
use tempo_sim::{run, RunReport, SimOpts};
use tempo_workload::{ConflictWorkload, RwConflict, Workload};

fn chaos_opts(schedule: NemesisSchedule, seed: u64) -> SimOpts {
    SimOpts {
        clients_per_site: 2,
        commands_per_client: 5,
        seed,
        nemesis: Some(schedule),
        client_timeout_us: Some(15_000_000),
        record_history: true,
        ..SimOpts::default()
    }
}

fn checked_run<W: Workload>(
    config: Config,
    schedule: NemesisSchedule,
    seed: u64,
    workload: W,
) -> RunReport {
    let report = run::<Tempo, _>(
        config,
        Planet::equidistant(config.n(), 50.0),
        chaos_opts(schedule, seed),
        workload,
    );
    assert!(
        !report.stalled,
        "seed {seed}: run stalled (summary: {})",
        report.summary()
    );
    assert_eq!(
        report.completed + report.aborted,
        (config.n() * 2 * 5) as u64,
        "seed {seed}: every command must be accounted for"
    );
    let history = report.history.as_ref().expect("history recorded");
    if let Err(violation) = history.check() {
        panic!(
            "seed {seed}: history check failed: {violation}\n{}",
            report.summary()
        );
    }
    report
}

fn history(report: &RunReport) -> &History {
    report.history.as_ref().expect("history recorded")
}

/// The acceptance scenario: a command is submitted at its coordinator, the coordinator
/// crashes after proposing but before committing, and the surviving quorum still
/// assigns it a timestamp and executes it via `MRec` (Algorithm 4).
#[test]
fn coordinator_crash_mid_commit_recovers_the_command() {
    let config = Config::full(5, 1);
    // Client 0 (site 0) submits its first command at t ≈ 0; process 0 coordinates it.
    // MPropose reaches the remote fast-quorum members at 50 ms; the crash at 60 ms
    // lands after the proposals were made but before any MProposeAck returns — the
    // commit is the coordinator's to send, and it never will.
    let schedule = NemesisSchedule::coordinator_crash(0, 60_000);
    let report = checked_run(config, schedule, 7, RwConflict::new(0.2, 0.4, 16, 7));
    assert!(
        report.metrics.recoveries_started >= 1,
        "a survivor must take over: {}",
        report.summary()
    );
    assert!(
        report.metrics.recoveries_completed >= 1,
        "the recovery must complete: {}",
        report.summary()
    );
    // The orphaned first command of the crashed coordinator is executed by every
    // survivor (the crashed site's client 0 had submitted it as Rifl 0#1).
    let orphan = Rifl::new(0, 1);
    for survivor in 1..5u64 {
        assert!(
            history(&report).executed_by(survivor).contains(&orphan),
            "survivor {survivor} must execute the recovered command"
        );
    }
    assert_eq!(report.faults.crashes, 1);
}

/// Rolling crashes up to `f`: one site at a time crashes, loses its volatile state and
/// rejoins. Runs with reads since the rejoin state transfer: a restarted replica
/// back-fills its store before serving anything (see the module docs).
#[test]
fn rolling_crashes_preset_stays_safe() {
    for (f, seed) in [(1usize, 11u64), (2, 12)] {
        let config = Config::full(5, f);
        let schedule = NemesisSchedule::rolling_crashes(config, 200_000, 400_000);
        let report = checked_run(config, schedule, seed, RwConflict::new(0.2, 0.4, 16, seed));
        assert_eq!(report.faults.crashes as usize, f);
        assert_eq!(report.faults.restarts as usize, f);
        assert!(report.completed > 0);
    }
}

/// Split brain and heal: the minority side's submissions stall during the partition and
/// finish — or abort — after the heal; nothing the clients observed may contradict
/// linearizability.
#[test]
fn split_brain_and_heal_stays_safe() {
    let config = Config::full(5, 1);
    let schedule = NemesisSchedule::split_brain_and_heal(config, 100_000, 1_500_000);
    let report = checked_run(config, schedule, 13, RwConflict::new(0.3, 0.5, 16, 13));
    assert_eq!(report.faults.partitions, 1);
    assert_eq!(report.faults.heals, 1);
    assert!(
        report.faults.dropped_partition > 0,
        "the partition must actually cut traffic: {}",
        report.summary()
    );
    assert!(report.completed > 0);
}

/// Lossy-link soak: every link drops 10% of messages for two simulated seconds; the
/// retransmission/recovery machinery must keep committing, and the observed outputs
/// must stay linearizable.
#[test]
fn lossy_link_soak_stays_safe() {
    let config = Config::full(5, 1);
    let schedule = NemesisSchedule::lossy_link_soak(config, 0.1, 0, 2_000_000);
    let report = checked_run(config, schedule, 17, RwConflict::new(0.3, 0.5, 16, 17));
    assert!(
        report.faults.dropped_link > 0,
        "the soak must actually drop messages: {}",
        report.summary()
    );
    assert!(report.completed > 0);
}

/// The satellite property test: seeded random nemesis schedules × `ConflictWorkload`
/// for Tempo with f = 1 and f = 2 — every run must pass the checker. Together the two
/// configurations cover at least 20 seeds (the CI acceptance bar).
#[test]
fn random_nemesis_schedules_pass_the_checker_f1() {
    let config = Config::full(5, 1);
    for seed in 0..14u64 {
        // The horizon must fit inside the run (~375 ms fault-free, longer once faults
        // hit): a first incident at ~25-31% of an 800 ms horizon always lands while
        // clients are still issuing, and the assert below keeps the test honest — a
        // schedule that never fires would make the whole battery vacuous.
        let schedule = NemesisSchedule::random(&RandomNemesisOpts {
            config,
            horizon_us: 800_000,
            incidents: 3,
            seed,
        });
        let report = checked_run(config, schedule, seed, ConflictWorkload::new(0.1, 16, seed));
        assert!(report.completed > 0, "seed {seed}: nothing completed");
        assert!(
            report.faults.events() > 0,
            "seed {seed}: no fault ever fired — the run ended before the schedule"
        );
    }
}

#[test]
fn random_nemesis_schedules_pass_the_checker_f2() {
    let config = Config::full(5, 2);
    for seed in 100..108u64 {
        let schedule = NemesisSchedule::random(&RandomNemesisOpts {
            config,
            horizon_us: 800_000,
            incidents: 3,
            seed,
        });
        let report = checked_run(config, schedule, seed, ConflictWorkload::new(0.1, 16, seed));
        assert!(report.completed > 0, "seed {seed}: nothing completed");
        assert!(
            report.faults.events() > 0,
            "seed {seed}: no fault ever fired — the run ended before the schedule"
        );
    }
}

/// A restarted replica rejoins and serves *new* commands again: after the roll, clients
/// of the restarted site keep completing commands watched at their colocated replica.
#[test]
fn restarted_replica_rejoins_and_serves_new_commands() {
    let config = Config::full(3, 1);
    let schedule = NemesisSchedule::new(vec![
        (200_000, tempo_fault::FaultEvent::Crash(0)),
        (600_000, tempo_fault::FaultEvent::Restart(0)),
    ]);
    let report = checked_run(config, schedule, 23, RwConflict::new(0.2, 0.4, 16, 23));
    // Incarnation 1 specifically: the all-incarnations view would pass on pre-crash
    // executions alone and say nothing about the rejoin.
    let executed_by_new_incarnation: Vec<Rifl> = history(&report).executed_by_incarnation(0, 1);
    assert!(
        !executed_by_new_incarnation.is_empty(),
        "the restarted replica must execute commands again: {}",
        report.summary()
    );
    assert_eq!(report.faults.restarts, 1);
}

// ------------------------------------------------------------- gray failures (§9)

/// Generic twin of `checked_run` for the cross-protocol conformance scenarios: same
/// accounting and history bar, any protocol.
fn checked_run_as<P: tempo_kernel::protocol::Protocol, W: Workload>(
    config: Config,
    schedule: NemesisSchedule,
    seed: u64,
    workload: W,
) -> RunReport {
    let report = tempo_sim::run::<P, _>(
        config,
        Planet::equidistant(config.n(), 50.0),
        chaos_opts(schedule, seed),
        workload,
    );
    assert!(
        !report.stalled,
        "{} seed {seed}: run stalled ({})",
        report.protocol,
        report.summary()
    );
    assert_eq!(
        report.completed + report.aborted,
        (config.n() * 2 * 5) as u64,
        "{} seed {seed}: every command must be accounted for",
        report.protocol
    );
    let history = report.history.as_ref().expect("history recorded");
    if let Err(violation) = history.check() {
        panic!(
            "{} seed {seed}: history check failed: {violation}\n{}",
            report.protocol,
            report.summary()
        );
    }
    report
}

/// Duplicate + reorder soak, cross-protocol: every link duplicates and reorders frames
/// for the whole run. Idempotent handlers and FIFO-independence are *protocol*
/// obligations, so Tempo, Atlas and FPaxos must all ride it out with full completion —
/// degradation under this failure mode is extra messages, never lost safety.
#[test]
fn duplicate_and_reorder_soak_is_safe_across_protocols() {
    let config = Config::full(5, 1);
    fn soak<P: tempo_kernel::protocol::Protocol>(config: Config, seed: u64) {
        let schedule = NemesisSchedule::duplicate_reorder_soak(config, 0.4, 0, 3_000_000);
        let report =
            checked_run_as::<P, _>(config, schedule, seed, RwConflict::new(0.3, 0.5, 16, seed));
        assert!(
            report.faults.duplicated > 0 && report.faults.reordered > 0,
            "{} seed {seed}: the soak must actually fire: {:?}",
            report.protocol,
            report.faults
        );
        assert_eq!(
            report.aborted, 0,
            "{} seed {seed}: duplicates/reorders alone must not cost completions",
            report.protocol
        );
    }
    soak::<Tempo>(config, 41);
    soak::<tempo_atlas::Atlas>(config, 42);
    soak::<tempo_fpaxos::FPaxos>(config, 43);
}

/// A slow node is not a dead node: 100×-latency on one replica's sends while a lossy
/// link chews at everyone else. Tempo must keep committing (its quorums route around
/// the slow replica) and the run must stay safe — the degradation is tail latency,
/// measured by the load plane, not correctness.
#[test]
fn slow_node_with_lossy_links_stays_safe() {
    let config = Config::full(5, 1);
    for seed in [51u64, 52, 53] {
        let mut schedule = NemesisSchedule::slow_node(4, 500_000, 100_000, 2_000_000);
        schedule.merge(NemesisSchedule::lossy_link_soak(config, 0.05, 0, 2_000_000));
        let report = checked_run(config, schedule, seed, RwConflict::new(0.3, 0.5, 16, seed));
        assert!(
            report.faults.slowed > 0,
            "seed {seed}: the slow node must have delayed frames: {:?}",
            report.faults
        );
        assert!(report.completed > 0, "seed {seed}");
    }
}

/// Detector-mode rolling crashes: no oracle — survivors must *notice* each crash from
/// heartbeat silence before recovery can start, and the restarted replica is welcomed
/// back by arriving frames, not by decree. Five seeds, checker on every history.
#[test]
fn detector_mode_rolling_crashes_pass_the_checker_on_five_seeds() {
    let config = Config::full(5, 1);
    for seed in 61..=65u64 {
        let schedule = NemesisSchedule::rolling_crashes(config, 300_000, 500_000);
        let report = tempo_sim::run::<Tempo, _>(
            config,
            Planet::equidistant(config.n(), 50.0),
            SimOpts {
                detector: Some(tempo_fault::DetectorOpts::default()),
                ..chaos_opts(schedule, seed)
            },
            RwConflict::new(0.2, 0.4, 16, seed),
        );
        assert!(!report.stalled, "seed {seed}: {}", report.summary());
        let history = report.history.as_ref().expect("history recorded");
        if let Err(violation) = history.check() {
            panic!("seed {seed}: detector-mode history failed: {violation}");
        }
        assert!(
            report.detector.suspicions > 0,
            "seed {seed}: the crash must have been detected: {:?}",
            report.detector
        );
        assert!(report.completed > 0, "seed {seed}");
    }
}
