//! `tempo-janus` — the Janus* baseline used in the partial-replication evaluation (§6.4).
//!
//! Janus generalizes EPaxos to partial replication: each shard accessed by a command runs
//! a dependency-collection round, and the command commits with the union of the
//! dependencies discovered at every shard. The paper's `Janus*` is an improved version
//! built on Atlas, with `⌊n/2⌋ + f` fast quorums and Atlas's more permissive fast-path
//! condition; this crate implements that improved version.
//!
//! Janus is **not genuine**: dependency information must be exchanged across shards
//! before a command can execute, which is what the evaluation shows to be its main cost
//! relative to Tempo (Figure 9). Execution reuses the dependency-graph executor of
//! `tempo-atlas`. Two simplifications are documented in DESIGN.md: recovery is not
//! implemented (the evaluation never exercises it), and cross-shard dependencies are only
//! enforced for commands known at the executing process (transitive cross-shard cycles
//! through commands that never touch the local shard are ignored).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use tempo_atlas::executor::{GraphExecutor, GraphInfo};
use tempo_atlas::graph::ConflictIndex;
use tempo_kernel::command::Command;
use tempo_kernel::config::Config;
use tempo_kernel::id::{Dot, DotGen, ProcessId, ShardId};
use tempo_kernel::membership::Membership;
use tempo_kernel::protocol::{
    Action, Executor, Protocol, ProtocolMetrics, TimerId, View, WireSize,
};

/// Janus* wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Fans a submission out to the colocated coordinator of each accessed shard.
    MSubmit {
        /// Command identifier.
        dot: Dot,
        /// The command payload.
        cmd: Command,
        /// Fast quorum per accessed shard.
        quorums: BTreeMap<ShardId, Vec<ProcessId>>,
    },
    /// Per-shard dependency collection (like Atlas's `MCollect`).
    MCollect {
        /// Command identifier.
        dot: Dot,
        /// The command payload.
        cmd: Command,
        /// Fast quorum of this shard.
        quorum: Vec<ProcessId>,
        /// Dependencies reported by the shard coordinator.
        deps: BTreeSet<Dot>,
    },
    /// Fast-quorum member's dependency report.
    MCollectAck {
        /// Command identifier.
        dot: Dot,
        /// Dependencies known at the sender.
        deps: BTreeSet<Dot>,
    },
    /// The dependencies decided by one shard, broadcast to every replica of every shard
    /// the command accesses (the non-genuine cross-shard exchange).
    MShardDeps {
        /// Command identifier.
        dot: Dot,
        /// The shard whose dependencies these are.
        shard: ShardId,
        /// The command payload.
        cmd: Command,
        /// The dependencies discovered at that shard.
        deps: BTreeSet<Dot>,
    },
}

impl WireSize for Message {
    fn wire_size(&self) -> usize {
        match self {
            Message::MSubmit { cmd, .. } => 32 + cmd.wire_size(),
            Message::MCollect { cmd, deps, .. } => 48 + cmd.wire_size() + deps.len() * 16,
            Message::MCollectAck { deps, .. } => 24 + deps.len() * 16,
            Message::MShardDeps { cmd, deps, .. } => 40 + cmd.wire_size() + deps.len() * 16,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    Collect,
    Commit,
}

#[derive(Debug)]
struct Info {
    phase: Phase,
    cmd: Option<Command>,
    quorum: Vec<ProcessId>,
    own_deps: BTreeSet<Dot>,
    acks: BTreeMap<ProcessId, BTreeSet<Dot>>,
    shard_deps: BTreeMap<ShardId, BTreeSet<Dot>>,
    deps_sent: bool,
}

impl Info {
    fn new() -> Self {
        Self {
            phase: Phase::Start,
            cmd: None,
            quorum: Vec::new(),
            own_deps: BTreeSet::new(),
            acks: BTreeMap::new(),
            shard_deps: BTreeMap::new(),
            deps_sent: false,
        }
    }
}

/// The Janus* instance at one process of one shard.
#[derive(Debug)]
pub struct Janus {
    process: ProcessId,
    shard: ShardId,
    config: Config,
    view: View,
    membership: Membership,
    dot_gen: DotGen,
    conflicts: ConflictIndex,
    info: BTreeMap<Dot, Info>,
    /// The execution stage: the dependency-graph executor shared with Atlas/EPaxos.
    executor: GraphExecutor,
    metrics: ProtocolMetrics,
}

impl Janus {
    /// The committed (union) dependency set of a command, if committed at this process.
    pub fn committed_deps(&self, dot: Dot) -> Option<BTreeSet<Dot>> {
        self.info.get(&dot).and_then(|i| {
            if i.phase == Phase::Commit {
                let mut union = BTreeSet::new();
                for deps in i.shard_deps.values() {
                    union.extend(deps.iter().copied());
                }
                Some(union)
            } else {
                None
            }
        })
    }

    /// Sizes of the strongly connected components executed so far (diagnostics).
    pub fn scc_sizes(&self) -> &[usize] {
        self.executor.scc_sizes()
    }

    fn info_mut(&mut self, dot: Dot) -> &mut Info {
        self.info.entry(dot).or_insert_with(Info::new)
    }

    fn send(
        &mut self,
        mut targets: Vec<ProcessId>,
        msg: Message,
        now_us: u64,
        out: &mut Vec<Action<Message>>,
    ) {
        targets.sort_unstable();
        targets.dedup();
        let to_self = targets.contains(&self.process);
        let remote: Vec<ProcessId> = targets.into_iter().filter(|t| *t != self.process).collect();
        if !remote.is_empty() {
            // `messages_sent` is counted per destination by the kernel `Driver`.
            out.push(Action::send(remote, msg.clone()));
        }
        if to_self {
            let actions = self.dispatch(self.process, msg, now_us);
            out.extend(actions);
        }
    }

    fn try_commit(&mut self, dot: Dot, out: &mut Vec<Action<Message>>) {
        let (ready, cmd, deps) = {
            let info = match self.info.get(&dot) {
                Some(info) => info,
                None => return,
            };
            if info.phase == Phase::Commit || info.cmd.is_none() {
                return;
            }
            let cmd = info.cmd.clone().expect("payload known");
            let ready = cmd.shards().all(|s| info.shard_deps.contains_key(&s));
            if !ready {
                return;
            }
            // Execution at this shard waits for: every dependency discovered on this
            // shard, plus any dependency from other shards already known locally
            // (unknown foreign commands never execute here, so waiting on them would
            // block forever; see the crate-level documentation).
            let own: BTreeSet<Dot> = info
                .shard_deps
                .get(&self.shard)
                .cloned()
                .unwrap_or_default();
            let mut deps = own;
            for (shard, shard_deps) in &info.shard_deps {
                if *shard == self.shard {
                    continue;
                }
                for dep in shard_deps {
                    if self.info.contains_key(dep) {
                        deps.insert(*dep);
                    }
                }
            }
            (true, cmd, deps)
        };
        if !ready {
            return;
        }
        self.info_mut(dot).phase = Phase::Commit;
        self.metrics.committed += 1;
        // Register so later commands see this one as a conflict even off the fast quorum.
        let keys: Vec<u64> = cmd.keys_of(self.shard).collect();
        if !keys.is_empty() {
            let _ = self.conflicts.dependencies(dot, &keys, cmd.is_read_only());
        }
        // Hand the command to the execution stage; ordering-only vertices (commands that
        // never touch this shard) enter the graph but are not applied locally.
        let executed = self.executor.handle(GraphInfo { dot, cmd, deps });
        out.extend(executed.into_iter().map(Action::Deliver));
    }

    fn dispatch(&mut self, from: ProcessId, msg: Message, now_us: u64) -> Vec<Action<Message>> {
        let mut out = Vec::new();
        match msg {
            Message::MSubmit { dot, cmd, quorums } => {
                // This process coordinates the command at its own shard.
                let quorum = quorums
                    .get(&self.shard)
                    .cloned()
                    .expect("quorums cover the coordinator's shard");
                let collect = Message::MCollect {
                    dot,
                    cmd,
                    quorum: quorum.clone(),
                    deps: BTreeSet::new(),
                };
                self.send(quorum, collect, now_us, &mut out);
            }
            Message::MCollect {
                dot,
                cmd,
                quorum,
                deps: coordinator_deps,
            } => {
                {
                    let info = self.info_mut(dot);
                    if info.phase != Phase::Start {
                        return out;
                    }
                    info.phase = Phase::Collect;
                    info.cmd = Some(cmd.clone());
                    info.quorum = quorum;
                }
                let keys: Vec<u64> = cmd.keys_of(self.shard).collect();
                let mut deps = self.conflicts.dependencies(dot, &keys, cmd.is_read_only());
                deps.extend(coordinator_deps);
                self.info_mut(dot).own_deps = deps.clone();
                let ack = Message::MCollectAck { dot, deps };
                self.send(vec![from], ack, now_us, &mut out);
            }
            Message::MCollectAck { dot, deps } => {
                let f = self.config.f();
                let ready = {
                    let Some(info) = self.info.get_mut(&dot) else {
                        return out;
                    };
                    if info.phase != Phase::Collect || info.deps_sent {
                        return out;
                    }
                    info.acks.insert(from, deps);
                    !info.quorum.is_empty() && info.quorum.iter().all(|q| info.acks.contains_key(q))
                };
                if !ready {
                    return out;
                }
                let (cmd, union, fast) = {
                    let info = self.info.get(&dot).expect("info exists");
                    let mut union = BTreeSet::new();
                    for deps in info.acks.values() {
                        union.extend(deps.iter().copied());
                    }
                    // Atlas-style fast-path condition; with the evaluation's f = 1 it
                    // always holds, otherwise one extra (local) round is modelled by the
                    // slow-path counter.
                    let fast = union
                        .iter()
                        .all(|dep| info.acks.values().filter(|d| d.contains(dep)).count() >= f);
                    (info.cmd.clone().expect("payload known"), union, fast)
                };
                if fast {
                    self.metrics.fast_paths += 1;
                } else {
                    self.metrics.slow_paths += 1;
                }
                self.info_mut(dot).deps_sent = true;
                // Non-genuine step: broadcast this shard's dependencies to every replica
                // of every shard the command accesses.
                let targets = self.view.all_replicas(&cmd);
                let msg = Message::MShardDeps {
                    dot,
                    shard: self.shard,
                    cmd,
                    deps: union,
                };
                self.send(targets, msg, now_us, &mut out);
            }
            Message::MShardDeps {
                dot,
                shard,
                cmd,
                deps,
            } => {
                {
                    let info = self.info_mut(dot);
                    if info.cmd.is_none() {
                        info.cmd = Some(cmd);
                    }
                    info.shard_deps.insert(shard, deps);
                }
                self.try_commit(dot, &mut out);
            }
        }
        out
    }
}

impl Protocol for Janus {
    type Message = Message;
    type Executor = GraphExecutor;

    const NAME: &'static str = "Janus*";

    fn new(process: ProcessId, shard: ShardId, config: Config) -> Self {
        let membership = Membership::from_config(&config);
        Self {
            process,
            shard,
            config,
            view: View::trivial(config, process),
            membership,
            dot_gen: DotGen::new(process),
            conflicts: ConflictIndex::new(),
            info: BTreeMap::new(),
            executor: GraphExecutor::new(process, shard, config),
            metrics: ProtocolMetrics::default(),
        }
    }

    fn id(&self) -> ProcessId {
        self.process
    }

    fn shard(&self) -> ShardId {
        self.shard
    }

    fn discover(&mut self, view: View) -> Vec<Action<Message>> {
        assert_eq!(view.config, self.config);
        self.view = view;
        // Janus* has no periodic tasks; recovery is out of scope for the baseline.
        Vec::new()
    }

    fn submit(&mut self, cmd: Command, now_us: u64) -> Vec<Action<Message>> {
        assert!(cmd.accesses(self.shard));
        let dot = self.dot_gen.next_id();
        let mut quorums = BTreeMap::new();
        for shard in cmd.shards() {
            quorums.insert(
                shard,
                self.view.fast_quorum(shard, self.config.fast_quorum_size()),
            );
        }
        let targets = self.view.local_coordinators(&cmd);
        let msg = Message::MSubmit { dot, cmd, quorums };
        let mut out = Vec::new();
        self.send(targets, msg, now_us, &mut out);
        out
    }

    fn handle(&mut self, from: ProcessId, msg: Message, now_us: u64) -> Vec<Action<Message>> {
        let _ = &self.membership;
        self.dispatch(from, msg, now_us)
    }

    fn timer(&mut self, _timer: TimerId, _now_us: u64) -> Vec<Action<Message>> {
        Vec::new()
    }

    fn executor(&self) -> &GraphExecutor {
        &self.executor
    }

    fn metrics(&self) -> ProtocolMetrics {
        let mut metrics = self.metrics.clone();
        // The execution stage is the single source of truth for the executed count.
        metrics.executed = self.executor.executed();
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_kernel::harness::LocalCluster;
    use tempo_kernel::id::Rifl;
    use tempo_kernel::KVOp;

    fn two_shard_cmd(client: u64, seq: u64, k0: u64, k1: u64) -> Command {
        Command::new(
            Rifl::new(client, seq),
            vec![(0, k0, KVOp::Add(1)), (1, k1, KVOp::Add(1))],
            0,
        )
    }

    #[test]
    fn single_shard_command_executes() {
        let config = Config::new(3, 1, 2);
        let mut cluster = LocalCluster::<Janus>::new(config);
        cluster.submit(0, Command::single(Rifl::new(1, 1), 0, 5, KVOp::Put(1), 0));
        cluster.tick_all(5_000);
        assert_eq!(cluster.executed(0).len(), 1);
        assert_eq!(cluster.executed(1).len(), 1);
        // Shard-1 processes never see the command (it only accesses shard 0).
        assert_eq!(cluster.process(3).metrics().committed, 0);
    }

    #[test]
    fn multi_shard_command_executes_at_both_shards() {
        let config = Config::new(3, 1, 2);
        let mut cluster = LocalCluster::<Janus>::new(config);
        cluster.submit(0, two_shard_cmd(1, 1, 10, 20));
        cluster.tick_all(5_000);
        // Executed at the shard-0 and shard-1 replicas of site 0.
        assert_eq!(cluster.executed(0).len(), 1);
        assert_eq!(cluster.executed(3).len(), 1);
    }

    #[test]
    fn dependencies_union_across_shards() {
        let config = Config::new(3, 1, 2);
        let mut cluster = LocalCluster::<Janus>::new(config);
        // First command touches keys (0:7) and (1:9).
        cluster.submit(0, two_shard_cmd(1, 1, 7, 9));
        cluster.tick_all(5_000);
        // Second command conflicts with the first on shard 1 only.
        cluster.submit(1, two_shard_cmd(2, 1, 8, 9));
        cluster.tick_all(5_000);
        let dot2 = Dot::new(1, 1);
        let deps = cluster.process(0).committed_deps(dot2).expect("committed");
        assert!(
            deps.contains(&Dot::new(0, 1)),
            "cross-shard conflict must appear in the union: {deps:?}"
        );
        assert_eq!(cluster.executed(0).len(), 2);
    }

    #[test]
    fn conflicting_multi_shard_commands_execute_in_the_same_order() {
        let config = Config::new(3, 1, 2);
        let mut cluster = LocalCluster::<Janus>::new(config);
        for site in 0..3u64 {
            cluster.submit_no_deliver(site, two_shard_cmd(site, 1, 0, 0));
        }
        cluster.run_to_quiescence();
        for _ in 0..5 {
            cluster.tick_all(5_000);
        }
        // Shard-0 replicas all execute the three conflicting commands in the same order.
        let reference: Vec<Rifl> = cluster.executed(0).into_iter().map(|e| e.rifl).collect();
        assert_eq!(reference.len(), 3);
        for p in [1u64, 2] {
            let order: Vec<Rifl> = cluster.executed(p).into_iter().map(|e| e.rifl).collect();
            assert_eq!(order, reference, "divergent order at shard-0 replica {p}");
        }
        // And so do shard-1 replicas, in the same relative order.
        let shard1: Vec<Rifl> = cluster.executed(3).into_iter().map(|e| e.rifl).collect();
        assert_eq!(
            shard1, reference,
            "shards disagree on conflicting command order"
        );
    }

    #[test]
    fn write_heavy_workloads_produce_more_dependencies_than_read_only() {
        // Two coordinators, so dependency compression can tell the workloads apart:
        // a read chains only to the *same* coordinator's previous read, while a write
        // depends on the latest read/write from *every* coordinator.
        let config = Config::new(3, 1, 2);
        let run = |write: bool| {
            let mut cluster = LocalCluster::<Janus>::new(config);
            for seq in 1..=10u64 {
                let op = if write { KVOp::Add(1) } else { KVOp::Get };
                let cmd = Command::new(Rifl::new(0, seq), vec![(0, 0, op), (1, 0, op)], 0);
                cluster.submit((seq - 1) % 2, cmd);
            }
            cluster.tick_all(5_000);
            let last = Dot::new(1, 5);
            cluster.process(0).committed_deps(last).unwrap().len()
        };
        let read_only = run(false);
        let writes = run(true);
        assert!(
            writes > read_only,
            "writes ({writes} deps) should accumulate more dependencies than reads ({read_only})"
        );
    }
}
