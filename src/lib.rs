//! Umbrella crate for the Tempo reproduction workspace.
//!
//! This crate re-exports the workspace members so that the examples under `examples/` and
//! the integration tests under `tests/` can refer to everything through one dependency.
//! The actual functionality lives in the member crates:
//!
//! * [`kernel`] — PSMR substrate (commands, configuration, protocol trait, KV store),
//! * [`planet`] — EC2 regions and the Table 2 latency matrix,
//! * [`tempo`] — the Tempo protocol (the paper's contribution),
//! * [`atlas`], [`fpaxos`], [`caesar`], [`janus`] — the baselines of §6,
//! * [`sim`] — the discrete-event simulator,
//! * [`runtime`] — the threaded cluster runtime,
//! * [`workload`] — microbenchmark, YCSB+T and batching workloads.

#![forbid(unsafe_code)]

pub use tempo_atlas as atlas;
pub use tempo_caesar as caesar;
pub use tempo_core as tempo;
pub use tempo_fpaxos as fpaxos;
pub use tempo_janus as janus;
pub use tempo_kernel as kernel;
pub use tempo_planet as planet;
pub use tempo_runtime as runtime;
pub use tempo_sim as sim;
pub use tempo_workload as workload;
