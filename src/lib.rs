//! Umbrella crate for the Tempo reproduction workspace.
//!
//! This crate re-exports the workspace members so that the examples under `examples/` and
//! the integration tests under `tests/` can refer to everything through one dependency.
//! The actual functionality lives in the member crates:
//!
//! * [`kernel`] — PSMR substrate: the Protocol API v2 ([`kernel::Protocol`] +
//!   [`kernel::Executor`] + typed [`kernel::Action`]s) and the generic
//!   [`kernel::Driver`] dispatch core shared by every runtime,
//! * [`planet`] — EC2 regions and the Table 2 latency matrix,
//! * [`tempo`] — the Tempo protocol (the paper's contribution),
//! * [`atlas`], [`fpaxos`], [`caesar`], [`janus`] — the baselines of §6,
//! * [`sim`] — the discrete-event simulator (with the fault plane),
//! * [`store`] — durable replica state: WAL + snapshots behind the `Store` trait,
//! * [`net`] — wire codec + pluggable transports (TCP, chaos injection),
//! * [`runtime`] — the cluster runtime: the networked `NetCluster` over `tempo-net`
//!   and the legacy channel-based `ThreadedCluster`,
//! * [`trace`] — post-run trace analysis: phase-latency breakdown, Chrome trace
//!   export (Perfetto-loadable) and the sampled metrics time series,
//! * [`workload`] — microbenchmark, YCSB+T and batching workloads,
//! * [`load`] — open-loop load generation: arrival schedules, Zipf/YCSB mixes and
//!   the latency-measurement conventions of BENCH_load.json.
//!
//! # Quick start (API v2)
//!
//! Protocols are deterministic state machines producing typed actions — `Send` messages,
//! `Deliver` executed commands (push-based completions), and `Schedule` for their own
//! periodic timers. The same state machine runs unchanged under the synchronous test
//! harness, the discrete-event simulator and the threaded runtime, because all three
//! schedule over the kernel's generic `Driver`:
//!
//! ```
//! use tempo::kernel::harness::LocalCluster;
//! use tempo::kernel::{Command, Config, KVOp, Rifl};
//! use tempo::tempo::Tempo;
//!
//! // Five replicas of one shard, tolerating one failure (fast quorums of 3).
//! let config = Config::full(5, 1);
//! let mut cluster = LocalCluster::<Tempo>::new(config);
//!
//! // Submit a command; completions are pushed by the protocol (no polling API).
//! cluster.submit(0, Command::single(Rifl::new(1, 1), 0, 42, KVOp::Put(7), 0));
//! let executed = cluster.executed(0);
//! assert_eq!(executed.len(), 1);
//!
//! // Protocol-owned timers (promise broadcast, liveness) fire as time advances.
//! cluster.tick_all(5_000);
//! ```
//!
//! To drive a protocol from your own scheduler, wrap it in a
//! [`kernel::Driver`] directly — see the `tempo-kernel` crate docs and
//! `DESIGN.md` ("Protocol API v2") for the full `Action`/`Driver`/timer contract.

#![forbid(unsafe_code)]

pub use tempo_atlas as atlas;
pub use tempo_caesar as caesar;
pub use tempo_core as tempo;
pub use tempo_fpaxos as fpaxos;
pub use tempo_janus as janus;
pub use tempo_kernel as kernel;
pub use tempo_load as load;
pub use tempo_net as net;
pub use tempo_planet as planet;
pub use tempo_runtime as runtime;
pub use tempo_sim as sim;
pub use tempo_store as store;
pub use tempo_trace as trace;
pub use tempo_workload as workload;
