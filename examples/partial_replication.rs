//! Partial replication: scale a YCSB+T workload across shards with Tempo's genuine
//! multi-partition protocol and compare against Janus*.
//!
//! Run with: `cargo run --release --example partial_replication`

use tempo_core::Tempo;
use tempo_janus::Janus;
use tempo_kernel::Config;
use tempo_planet::Planet;
use tempo_sim::{run, CpuModel, SimOpts};
use tempo_workload::YcsbT;

fn main() {
    let planet = Planet::ec2_three_regions();
    let opts = SimOpts {
        clients_per_site: 8,
        commands_per_client: 15,
        cpu: Some(CpuModel::cluster()),
        ..SimOpts::default()
    };

    println!("YCSB+T, two keys per transaction, zipf 0.7, 50% writes, 3 sites per shard\n");
    println!(
        "{:<8} {:>16} {:>16}",
        "shards", "Tempo (kops/s)", "Janus* (kops/s)"
    );
    for shards in [2usize, 4, 6] {
        let config = Config::new(3, 1, shards);
        let tempo = run::<Tempo, _>(
            config,
            planet.clone(),
            opts.clone(),
            YcsbT::new(shards, 100_000, 0.7, 0.5, 7),
        );
        let janus = run::<Janus, _>(
            config,
            planet.clone(),
            opts.clone(),
            YcsbT::new(shards, 100_000, 0.7, 0.5, 7),
        );
        println!(
            "{:<8} {:>16.2} {:>16.2}",
            shards,
            tempo.throughput_kops(),
            janus.throughput_kops()
        );
    }
    println!("\nTempo orders each transaction only at the shards it accesses (genuine), so");
    println!("throughput grows with the number of shards; Janus* pays cross-shard dependency");
    println!("exchanges and suffers under write-heavy, skewed workloads (Figure 9 of the paper).");
}
