//! Fault tolerance: a coordinator crashes mid-protocol and a new coordinator recovers the
//! command with the exact timestamp the crashed coordinator could have committed.
//!
//! Run with: `cargo run --example fault_tolerance`

use tempo_core::{Phase, Tempo};
use tempo_kernel::harness::LocalCluster;
use tempo_kernel::id::{Dot, Rifl};
use tempo_kernel::protocol::Protocol;
use tempo_kernel::{Command, Config, KVOp};

fn main() {
    let config = Config::full(3, 1);
    let mut cluster = LocalCluster::<Tempo>::new(config);

    println!("replica 1 has a head start: its clock is at 7");
    let bump = tempo_core::Message::MBump {
        dot: Dot::new(9, 9),
        ts: 7,
    };
    let _ = cluster.process_mut(1).handle(1, bump, 0);

    println!(
        "replica 0 submits a command, reaches its fast quorum, then crashes before committing"
    );
    cluster.submit_no_deliver(0, Command::single(Rifl::new(1, 1), 0, 0, KVOp::Put(42), 0));
    cluster.step(); // MPropose reaches replica 1
    cluster.step(); // MPayload reaches replica 2
    cluster.crash(0);
    cluster.run_to_quiescence();

    let dot = Dot::new(0, 1);
    println!(
        "after the crash: replica 1 is in phase {:?}, replica 2 in phase {:?}",
        cluster.process(1).phase_of(dot).unwrap(),
        cluster.process(2).phase_of(dot).unwrap()
    );

    println!("replicas 1 and 2 suspect the coordinator; replica 1 becomes the recovery leader");
    cluster.process_mut(1).suspect(0);
    cluster.process_mut(2).suspect(0);

    println!("the periodic handler triggers recovery after the timeout...");
    cluster.tick_all(3_000_000);
    cluster.tick_all(5_000);
    cluster.tick_all(5_000);

    for replica in [1u64, 2] {
        let ts = cluster
            .process(replica)
            .committed_timestamp(dot)
            .expect("command recovered");
        let phase = cluster.process(replica).phase_of(dot).unwrap();
        println!("replica {replica}: committed timestamp {ts}, phase {phase:?}");
        assert_eq!(ts, 8, "recovered timestamp equals replica 1's proposal");
        assert_eq!(phase, Phase::Execute);
    }
    println!("\nthe command survived the coordinator crash with a single, agreed timestamp");
    println!("(Property 1 and the recovery protocol of §5).");
}
