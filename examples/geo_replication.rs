//! Geo-replication: compare Tempo and Flexible Paxos latency over the paper's five EC2
//! regions using the discrete-event simulator.
//!
//! Run with: `cargo run --release --example geo_replication`

use tempo_core::Tempo;
use tempo_fpaxos::FPaxos;
use tempo_kernel::Config;
use tempo_planet::{ec2_region_label, Planet};
use tempo_sim::{run, SimOpts};
use tempo_workload::ConflictWorkload;

fn main() {
    let config = Config::full(5, 1);
    let opts = SimOpts {
        clients_per_site: 16,
        commands_per_client: 20,
        ..SimOpts::default()
    };
    let planet = Planet::ec2();

    println!("running Tempo f=1 over Ireland / N. California / Singapore / Canada / São Paulo...");
    let tempo = run::<Tempo, _>(
        config,
        planet.clone(),
        opts.clone(),
        ConflictWorkload::new(0.02, 100, 1),
    );
    println!("running FPaxos f=1 with the leader in Ireland...");
    let fpaxos = run::<FPaxos, _>(
        config,
        planet.clone(),
        opts,
        ConflictWorkload::new(0.02, 100, 1),
    );

    println!("\nper-site mean latency (ms):");
    println!("{:<16} {:>10} {:>10}", "site", "Tempo", "FPaxos");
    for site in 0..5u64 {
        println!(
            "{:<16} {:>10.0} {:>10.0}",
            ec2_region_label(&planet.regions()[site as usize]),
            tempo.site_mean_ms(site),
            fpaxos.site_mean_ms(site)
        );
    }
    println!(
        "\naverage: Tempo {:.0} ms, FPaxos {:.0} ms — leaderless replication satisfies every site
more uniformly, while FPaxos penalises clients far from the leader (Figure 5 of the paper).",
        tempo.mean_latency_ms(),
        fpaxos.mean_latency_ms()
    );
}
