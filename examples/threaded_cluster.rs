//! Threaded cluster: run Tempo on real OS threads with injected wide-area delays and
//! measure client latency from two different sites concurrently.
//!
//! Run with: `cargo run --release --example threaded_cluster`

use std::sync::Arc;
use std::time::Duration;
use tempo_core::Tempo;
use tempo_kernel::{Command, Config, KVOp, Rifl};
use tempo_planet::Planet;
use tempo_runtime::ThreadedCluster;

fn main() {
    // Three replicas separated by an 80 ms round trip.
    let planet = Planet::equidistant(3, 80.0);
    let cluster = ThreadedCluster::<Tempo>::start(Config::full(3, 1), Some(planet));

    let mut clients = Vec::new();
    for site in 0..2u64 {
        let cluster = Arc::clone(&cluster);
        clients.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            for seq in 1..=5u64 {
                let cmd = Command::single(Rifl::new(site + 1, seq), 0, 0, KVOp::Add(1), 64);
                let latency = cluster
                    .submit_sync(site, cmd, Duration::from_secs(10))
                    .expect("command must complete");
                latencies.push(latency);
            }
            (site, latencies)
        }));
    }
    for client in clients {
        let (site, latencies) = client.join().expect("client thread");
        let mean_ms: f64 = latencies
            .iter()
            .map(|l| l.as_secs_f64() * 1000.0)
            .sum::<f64>()
            / latencies.len() as f64;
        println!(
            "client at site {site}: mean latency {mean_ms:.0} ms over {} commands",
            latencies.len()
        );
    }

    let metrics = cluster.shutdown();
    let committed: u64 = metrics.iter().map(|m| m.committed).sum();
    let fast: u64 = metrics.iter().map(|m| m.fast_paths).sum();
    println!("cluster shut down: {committed} commits across replicas, {fast} fast paths");
}
