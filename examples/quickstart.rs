//! Quickstart: replicate a key-value store with Tempo on five replicas.
//!
//! Run with: `cargo run --example quickstart`

use tempo_core::Tempo;
use tempo_kernel::harness::LocalCluster;
use tempo_kernel::protocol::Protocol;
use tempo_kernel::{Command, Config, KVOp, Rifl};

fn main() {
    // Five replicas of a single shard, tolerating one failure (fast quorums of 3).
    let config = Config::full(5, 1);
    let mut cluster = LocalCluster::<Tempo>::new(config);

    println!("submitting 10 commands from different replicas...");
    for seq in 1..=10u64 {
        let replica = seq % 5;
        let cmd = Command::single(Rifl::new(replica, seq), 0, seq % 3, KVOp::Add(seq), 0);
        cluster.submit(replica, cmd);
    }
    // A couple of periodic ticks flush promises so every replica reaches stability.
    cluster.tick_all(5_000);
    cluster.tick_all(5_000);

    for replica in cluster.process_ids() {
        let executed = cluster.executed(replica);
        let metrics = cluster.process(replica).metrics();
        println!(
            "replica {replica}: executed {:2} commands, committed {:2}, fast-path ratio {:.0}%",
            executed.len(),
            metrics.committed,
            metrics.fast_path_ratio() * 100.0
        );
        assert_eq!(executed.len(), 10, "every replica executes every command");
    }
    println!("all replicas executed the same 10 commands in the same timestamp order");
}
