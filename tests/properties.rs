//! Property-based tests (proptest) on the core data structures and protocol invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use tempo_atlas::DependencyGraph;
use tempo_core::{PromiseTracker, Tempo};
use tempo_kernel::harness::LocalCluster;
use tempo_kernel::id::{Dot, ProcessId, Rifl};
use tempo_kernel::kvstore::KVStore;
use tempo_kernel::rand::{Rng, Zipf};
use tempo_kernel::{Command, Config, KVOp};

/// Reference (naive) implementation of Theorem 1: the largest `s` such that some majority
/// of processes has every promise `1..=s`.
fn naive_stable(n: usize, promises: &[(u64, u64)]) -> u64 {
    let mut by_process: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for (p, ts) in promises {
        by_process.entry(*p).or_default().insert(*ts);
    }
    let mut prefixes: Vec<u64> = (0..n as u64)
        .map(|p| {
            let set = by_process.get(&p).cloned().unwrap_or_default();
            let mut prefix = 0;
            while set.contains(&(prefix + 1)) {
                prefix += 1;
            }
            prefix
        })
        .collect();
    prefixes.sort_unstable();
    prefixes[n / 2]
}

proptest! {
    #[test]
    fn stability_matches_naive_reference(
        promises in vec((0u64..5, 1u64..30), 0..120)
    ) {
        let processes: Vec<u64> = (0..5).collect();
        let mut tracker = PromiseTracker::new(&processes, 2);
        for (p, ts) in &promises {
            tracker.add_single(*p, *ts);
        }
        prop_assert_eq!(tracker.stable_timestamp(), naive_stable(5, &promises));
    }

    #[test]
    fn stability_is_monotone_under_new_promises(
        first in vec((0u64..5, 1u64..30), 0..60),
        second in vec((0u64..5, 1u64..30), 0..60)
    ) {
        let processes: Vec<u64> = (0..5).collect();
        let mut tracker = PromiseTracker::new(&processes, 2);
        for (p, ts) in &first {
            tracker.add_single(*p, *ts);
        }
        let before = tracker.stable_timestamp();
        for (p, ts) in &second {
            tracker.add_single(*p, *ts);
        }
        prop_assert!(tracker.stable_timestamp() >= before);
    }

    #[test]
    fn dependency_graph_executes_everything_exactly_once(
        edges in vec((0u64..20, 0u64..20), 0..80)
    ) {
        // Build an arbitrary dependency graph over 20 commands (cycles allowed) and commit
        // all of them; the executor must execute each exactly once, respecting
        // committed-before-executed.
        let mut deps: BTreeMap<u64, BTreeSet<Dot>> = (0..20u64).map(|i| (i, BTreeSet::new())).collect();
        for (a, b) in edges {
            if a != b {
                deps.get_mut(&a).unwrap().insert(Dot::new(1, b + 1));
            }
        }
        let mut graph = DependencyGraph::new();
        let mut executed = Vec::new();
        for (i, d) in &deps {
            graph.add(Dot::new(1, i + 1), d.clone());
            executed.extend(graph.try_execute());
        }
        executed.extend(graph.try_execute());
        prop_assert_eq!(executed.len(), 20, "every command executes once all are committed");
        let unique: BTreeSet<Dot> = executed.iter().copied().collect();
        prop_assert_eq!(unique.len(), 20, "no duplicates");
        prop_assert_eq!(graph.pending(), 0);
    }

    #[test]
    fn kvstore_is_deterministic(ops in vec((0u64..10, 0u64..1000), 1..100)) {
        let commands: Vec<Command> = ops
            .iter()
            .enumerate()
            .map(|(i, (key, value))| {
                Command::single(Rifl::new(1, i as u64 + 1), 0, *key, KVOp::Add(*value), 0)
            })
            .collect();
        let mut a = KVStore::new();
        let mut b = KVStore::new();
        for c in &commands {
            a.execute(0, c);
        }
        for c in &commands {
            b.execute(0, c);
        }
        prop_assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn zipf_samples_stay_in_range(n in 1u64..1_000_000, theta in 0.0f64..0.99, seed in 0u64..1000) {
        let zipf = Zipf::new(n, theta);
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    #[test]
    fn rng_range_is_always_below_bound(bound in 1u64..u64::MAX, seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }
}

proptest! {
    // Heavier protocol-level property: fewer cases, still randomized.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tempo_executes_all_commands_in_the_same_order_everywhere(
        schedule in vec((0u64..5, 0u64..3, any::<bool>()), 5..40),
        seed in 0u64..500
    ) {
        // `schedule` entries: (submitting process, key, deliver-some-messages?).
        let config = Config::full(5, 1);
        let mut cluster = LocalCluster::<Tempo>::new(config);
        let mut rng = Rng::new(seed);
        let mut seq = [0u64; 5];
        for (process, key, deliver) in &schedule {
            let p = *process as ProcessId;
            seq[p as usize] += 1;
            let cmd = Command::single(Rifl::new(p, seq[p as usize]), 0, *key, KVOp::Add(1), 0);
            cluster.submit_no_deliver(p, cmd);
            if *deliver {
                for _ in 0..(rng.gen_range(6) + 1) {
                    cluster.step();
                }
            }
        }
        cluster.run_to_quiescence();
        for _ in 0..5 {
            cluster.tick_all(5_000);
        }
        let total = schedule.len();
        let reference: Vec<Rifl> = cluster.executed(0).into_iter().map(|e| e.rifl).collect();
        prop_assert_eq!(reference.len(), total);
        for p in 1..5u64 {
            let order: Vec<Rifl> = cluster.executed(p).into_iter().map(|e| e.rifl).collect();
            prop_assert_eq!(&order, &reference, "divergent execution order at process {}", p);
        }
    }
}
