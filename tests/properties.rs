//! Randomized property tests on the core data structures and protocol invariants.
//!
//! The workspace is dependency free, so instead of an external property-testing crate
//! these tests draw their cases from the deterministic PRNG in `tempo_kernel::rand`:
//! each property is checked over many seeded random instances, and a failure message
//! always carries the seed so the case can be replayed.

use std::collections::{BTreeMap, BTreeSet};
use tempo_atlas::DependencyGraph;
use tempo_core::{PromiseRange, PromiseTracker, Tempo};
use tempo_kernel::harness::LocalCluster;
use tempo_kernel::id::{Dot, ProcessId, Rifl};
use tempo_kernel::kvstore::KVStore;
use tempo_kernel::rand::{Rng, Zipf};
use tempo_kernel::{Command, Config, KVOp};

/// Reference (naive) implementation of Theorem 1: the largest `s` such that some majority
/// of processes has every promise `1..=s`.
fn naive_stable(n: usize, promises: &[(u64, u64)]) -> u64 {
    let mut by_process: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for (p, ts) in promises {
        by_process.entry(*p).or_default().insert(*ts);
    }
    let mut prefixes: Vec<u64> = (0..n as u64)
        .map(|p| {
            let set = by_process.get(&p).cloned().unwrap_or_default();
            let mut prefix = 0;
            while set.contains(&(prefix + 1)) {
                prefix += 1;
            }
            prefix
        })
        .collect();
    prefixes.sort_unstable();
    prefixes[n / 2]
}

fn random_promises(rng: &mut Rng, max_len: u64) -> Vec<(u64, u64)> {
    let len = rng.gen_range(max_len);
    (0..len)
        .map(|_| (rng.gen_range(5), 1 + rng.gen_range(29)))
        .collect()
}

#[test]
fn stability_matches_naive_reference() {
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed);
        let promises = random_promises(&mut rng, 120);
        let processes: Vec<u64> = (0..5).collect();
        let mut tracker = PromiseTracker::new(&processes, 2);
        for (p, ts) in &promises {
            tracker.add_single(*p, *ts);
        }
        assert_eq!(
            tracker.stable_timestamp(),
            naive_stable(5, &promises),
            "seed {seed}: tracker disagrees with the naive reference"
        );
    }
}

#[test]
fn incremental_stability_matches_oracle_after_every_update() {
    // `stable_timestamp()` is now a cached value maintained incrementally as promises
    // arrive. Query it after *every* update of a random promise-range stream and compare
    // against the naive collect-and-sort oracle of Theorem 1 (the seed implementation).
    for seed in 0..150u64 {
        let mut rng = Rng::new(seed);
        let r = 3 + 2 * rng.gen_range(3) as usize; // r ∈ {3, 5, 7}
        let processes: Vec<u64> = (0..r as u64).collect();
        let mut tracker = PromiseTracker::new(&processes, r / 2);
        let mut oracle: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); r];
        let updates = 1 + rng.gen_range(150);
        for step in 0..updates {
            let p = rng.gen_range(r as u64);
            let start = 1 + rng.gen_range(60);
            let end = start + rng.gen_range(8);
            tracker.add(p, PromiseRange::new(start, end));
            oracle[p as usize].extend(start..=end);
            let mut prefixes: Vec<u64> = oracle
                .iter()
                .map(|set| {
                    let mut prefix = 0;
                    while set.contains(&(prefix + 1)) {
                        prefix += 1;
                    }
                    prefix
                })
                .collect();
            prefixes.sort_unstable();
            assert_eq!(
                tracker.stable_timestamp(),
                prefixes[r / 2],
                "seed {seed}, step {step}, r {r}: incremental tracker diverged from oracle"
            );
        }
    }
}

#[test]
fn stability_is_monotone_under_new_promises() {
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed);
        let first = random_promises(&mut rng, 60);
        let second = random_promises(&mut rng, 60);
        let processes: Vec<u64> = (0..5).collect();
        let mut tracker = PromiseTracker::new(&processes, 2);
        for (p, ts) in &first {
            tracker.add_single(*p, *ts);
        }
        let before = tracker.stable_timestamp();
        for (p, ts) in &second {
            tracker.add_single(*p, *ts);
        }
        assert!(
            tracker.stable_timestamp() >= before,
            "seed {seed}: stability went backwards"
        );
    }
}

#[test]
fn dependency_graph_executes_everything_exactly_once() {
    for seed in 0..100u64 {
        let mut rng = Rng::new(seed);
        // Build an arbitrary dependency graph over 20 commands (cycles allowed) and
        // commit all of them; the executor must execute each exactly once, respecting
        // committed-before-executed.
        let mut deps: BTreeMap<u64, BTreeSet<Dot>> =
            (0..20u64).map(|i| (i, BTreeSet::new())).collect();
        let edges = rng.gen_range(80);
        for _ in 0..edges {
            let a = rng.gen_range(20);
            let b = rng.gen_range(20);
            if a != b {
                deps.get_mut(&a).unwrap().insert(Dot::new(1, b + 1));
            }
        }
        let mut graph = DependencyGraph::new();
        let mut executed = Vec::new();
        for (i, d) in &deps {
            graph.add(Dot::new(1, i + 1), d.clone());
            executed.extend(graph.try_execute());
        }
        executed.extend(graph.try_execute());
        assert_eq!(
            executed.len(),
            20,
            "seed {seed}: every command executes once all are committed"
        );
        let unique: BTreeSet<Dot> = executed.iter().copied().collect();
        assert_eq!(unique.len(), 20, "seed {seed}: no duplicates");
        assert_eq!(graph.pending(), 0, "seed {seed}");
    }
}

#[test]
fn kvstore_is_deterministic() {
    for seed in 0..50u64 {
        let mut rng = Rng::new(seed);
        let len = 1 + rng.gen_range(99);
        let commands: Vec<Command> = (0..len)
            .map(|i| {
                let key = rng.gen_range(10);
                let value = rng.gen_range(1000);
                Command::single(Rifl::new(1, i + 1), 0, key, KVOp::Add(value), 0)
            })
            .collect();
        let mut a = KVStore::new();
        let mut b = KVStore::new();
        for c in &commands {
            a.execute(0, c);
        }
        for c in &commands {
            b.execute(0, c);
        }
        assert_eq!(a.digest(), b.digest(), "seed {seed}: stores diverged");
    }
}

#[test]
fn zipf_samples_stay_in_range() {
    for seed in 0..100u64 {
        let mut rng = Rng::new(seed);
        let n = 1 + rng.gen_range(1_000_000);
        let theta = rng.next_f64() * 0.99;
        let zipf = Zipf::new(n, theta);
        for _ in 0..100 {
            assert!(
                zipf.sample(&mut rng) < n,
                "seed {seed}: sample out of range"
            );
        }
    }
}

#[test]
fn rng_range_is_always_below_bound() {
    for seed in 0..200u64 {
        let mut rng = Rng::new(seed);
        let bound = 1 + rng.next_u64() % (u64::MAX - 1);
        for _ in 0..50 {
            assert!(rng.gen_range(bound) < bound, "seed {seed}");
        }
    }
}

/// Heavier protocol-level property: randomized schedules of submissions and partial
/// deliveries must leave every replica with the same execution order.
#[test]
fn tempo_executes_all_commands_in_the_same_order_everywhere() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(seed);
        let config = Config::full(5, 1);
        let mut cluster = LocalCluster::<Tempo>::new(config);
        let total = 5 + rng.gen_range(35);
        let mut seq = [0u64; 5];
        for _ in 0..total {
            let p = rng.gen_range(5) as ProcessId;
            let key = rng.gen_range(3);
            seq[p as usize] += 1;
            let cmd = Command::single(Rifl::new(p, seq[p as usize]), 0, key, KVOp::Add(1), 0);
            cluster.submit_no_deliver(p, cmd);
            if rng.gen_bool(0.5) {
                for _ in 0..(rng.gen_range(6) + 1) {
                    cluster.step();
                }
            }
        }
        cluster.run_to_quiescence();
        for _ in 0..5 {
            cluster.tick_all(5_000);
        }
        let reference: Vec<Rifl> = cluster.executed(0).into_iter().map(|e| e.rifl).collect();
        assert_eq!(
            reference.len() as u64,
            total,
            "seed {seed}: missing executions"
        );
        for p in 1..5u64 {
            let order: Vec<Rifl> = cluster.executed(p).into_iter().map(|e| e.rifl).collect();
            assert_eq!(
                order, reference,
                "seed {seed}: divergent execution order at process {p}"
            );
        }
    }
}
