//! Protocol API v2 trait-conformance suite.
//!
//! One parameterized harness drives every `Protocol` implementation through the shared
//! `Driver` dispatch core (via the kernel's `LocalCluster`, which is built on it) and
//! checks the contract every protocol must honour:
//!
//! * a single-shard put/get round executes at every replica, in the same order, with the
//!   read observing the write (push-based `Action::Deliver` completions);
//! * concurrent conflicting submissions (which exercise each protocol's slow path where
//!   it has one) still commit exactly once per command and execute convergently;
//! * protocol-owned timers: protocols declare their periodic events at `discover` time
//!   and keep them alive by re-scheduling from `Protocol::timer` — and firing timers is
//!   harmless at quiescence;
//! * driver-maintained metrics: `messages_sent` counts per-destination deliveries and
//!   agrees with the number of messages the transport actually carried.

use tempo_atlas::{Atlas, EPaxos};
use tempo_caesar::Caesar;
use tempo_core::{Tempo, TempoOptions};
use tempo_fpaxos::FPaxos;
use tempo_janus::Janus;
use tempo_kernel::driver::Driver;
use tempo_kernel::harness::LocalCluster;
use tempo_kernel::id::{ProcessId, Rifl, ShardId};
use tempo_kernel::protocol::{Executor, Protocol, View};
use tempo_kernel::{Command, Config, KVOp};

/// Expected timer behaviour of a protocol under test.
#[derive(Clone, Copy, PartialEq)]
enum Timers {
    /// The protocol schedules periodic timers at `discover` time (e.g. Tempo).
    Periodic,
    /// The protocol has no periodic work.
    None,
}

fn put(client: u64, seq: u64, key: u64, value: u64) -> Command {
    Command::single(Rifl::new(client, seq), 0, key, KVOp::Put(value), 0)
}

fn get(client: u64, seq: u64, key: u64) -> Command {
    Command::single(Rifl::new(client, seq), 0, key, KVOp::Get, 0)
}

/// Single-shard put/get: both commands execute everywhere, in submission-compatible
/// order, and the read observes the written value.
fn put_get_round<P: Protocol>(config: Config) {
    let mut cluster = LocalCluster::<P>::new(config);
    cluster.submit(0, put(1, 1, 42, 7));
    cluster.submit(0, get(1, 2, 42));
    // Give timer-driven protocols a few periods to reach stability everywhere.
    for _ in 0..4 {
        cluster.tick_all(5_000);
    }
    for p in cluster.process_ids() {
        let executed = cluster.executed(p);
        assert_eq!(
            executed.len(),
            2,
            "{}: put/get did not execute at process {p}",
            P::NAME
        );
        assert_eq!(executed[0].rifl, Rifl::new(1, 1), "{}: order", P::NAME);
        assert_eq!(executed[1].rifl, Rifl::new(1, 2), "{}: order", P::NAME);
        assert_eq!(
            executed[1].result.outputs,
            vec![(42, Some(7))],
            "{}: the read must observe the write at process {p}",
            P::NAME
        );
        // The executor hook agrees with the delivered completions.
        assert_eq!(cluster.process(p).executor().executed(), 2, "{}", P::NAME);
    }
}

/// Concurrent conflicting submissions: every command still commits exactly once at its
/// coordinator (fast or slow path) and all replicas execute the same order. With
/// divergent replica state this is what drives each protocol's slow path.
fn contended_round<P: Protocol>(config: Config) {
    let mut cluster = LocalCluster::<P>::new(config);
    let n = cluster.process_ids().len() as u64;
    for p in cluster.process_ids() {
        cluster.submit_no_deliver(p, put(p, 1, 0, p));
    }
    cluster.run_to_quiescence();
    for _ in 0..6 {
        cluster.tick_all(5_000);
    }
    // Every coordinator decided its command exactly once, via the fast or the slow path.
    let decided: u64 = cluster
        .process_ids()
        .iter()
        .map(|p| {
            let m = cluster.process(*p).metrics();
            m.fast_paths + m.slow_paths
        })
        .sum();
    assert_eq!(decided, n, "{}: each command decided exactly once", P::NAME);
    // Convergent execution order everywhere.
    let reference: Vec<Rifl> = cluster.executed(0).into_iter().map(|e| e.rifl).collect();
    assert_eq!(reference.len() as u64, n, "{}: missing executions", P::NAME);
    for p in cluster.process_ids().into_iter().skip(1) {
        let order: Vec<Rifl> = cluster.executed(p).into_iter().map(|e| e.rifl).collect();
        assert_eq!(order, reference, "{}: divergent order at {p}", P::NAME);
    }
}

/// Timer contract: protocols declare their periodic events when discovering the view and
/// keep them alive by re-scheduling; firing timers at quiescence changes nothing.
fn timer_contract<P: Protocol>(config: Config, timers: Timers) {
    let mut driver = Driver::<P>::new(0, 0, config);
    let _ = driver.start(View::trivial(config, 0), 0);
    match timers {
        Timers::Periodic => {
            let due = driver
                .next_timer_due()
                .unwrap_or_else(|| panic!("{}: expected periodic timers", P::NAME));
            // Firing the due timer re-schedules it (the protocol owns its cadence).
            let _ = driver.fire_due(due);
            let next = driver
                .next_timer_due()
                .unwrap_or_else(|| panic!("{}: timer must re-schedule", P::NAME));
            assert!(
                next > due,
                "{}: re-scheduled timer is in the future",
                P::NAME
            );
        }
        Timers::None => {
            assert!(
                driver.next_timer_due().is_none(),
                "{}: expected no timers",
                P::NAME
            );
        }
    }
    // Firing timers on an idle cluster is harmless.
    let mut cluster = LocalCluster::<P>::new(config);
    cluster.tick_all(50_000);
    for p in cluster.process_ids() {
        assert_eq!(cluster.process(p).metrics().executed, 0, "{}", P::NAME);
    }
}

/// `messages_sent` is maintained by the driver, per destination: summed over processes
/// it must equal the number of messages the FIFO transport delivered.
fn message_accounting<P: Protocol>(config: Config) {
    let mut cluster = LocalCluster::<P>::new(config);
    for seq in 1..=5u64 {
        cluster.submit(0, put(1, seq, seq, seq));
    }
    for _ in 0..4 {
        cluster.tick_all(5_000);
    }
    let sent: u64 = cluster
        .process_ids()
        .iter()
        .map(|p| cluster.driver(*p).metrics().messages_sent)
        .sum();
    assert_eq!(
        sent,
        cluster.delivered,
        "{}: per-destination send counts must match delivered messages",
        P::NAME
    );
    // The protocol side leaves the counter to the driver.
    let protocol_side: u64 = cluster
        .process_ids()
        .iter()
        .map(|p| cluster.process(*p).metrics().messages_sent)
        .sum();
    assert_eq!(
        protocol_side,
        0,
        "{}: counting moved to the driver",
        P::NAME
    );
}

/// Message-loss scenario: every in-flight message is independently dropped with
/// p = 0.1; the protocol must still commit and execute a submitted command everywhere,
/// through whatever retransmission/recovery timers it owns. Protocols without
/// retransmission cannot pass — their tests below are `#[ignore]`d with the reason.
fn lossy_commit_round<P: Protocol>(
    config: Config,
    make: impl FnMut(ProcessId, ShardId) -> P,
    seed: u64,
) -> u64 {
    let mut cluster = LocalCluster::<P>::from_protocols(config, |p| View::trivial(config, p), make);
    cluster.set_message_loss(0.1, seed);
    cluster.submit_no_deliver(0, put(1, 1, 7, 9));
    cluster.run_to_quiescence();
    // Drive the protocol timers for up to 5 simulated seconds; retransmission and
    // recovery must finish the command at every replica well within that.
    let mut ticks = 0;
    while ticks < 1_000 {
        cluster.tick_all(5_000);
        ticks += 1;
        let all_executed = cluster
            .process_ids()
            .iter()
            .all(|p| cluster.process(*p).metrics().executed >= 1);
        if all_executed {
            break;
        }
    }
    for p in cluster.process_ids() {
        assert_eq!(
            cluster.process(p).metrics().executed,
            1,
            "{}: command must execute at process {p} despite p=0.1 loss (seed {seed})",
            P::NAME
        );
    }
    cluster.dropped
}

fn conformance<P: Protocol>(config: Config, timers: Timers) {
    put_get_round::<P>(config);
    contended_round::<P>(config);
    timer_contract::<P>(config, timers);
    message_accounting::<P>(config);
}

#[test]
fn tempo_conforms() {
    conformance::<Tempo>(Config::full(5, 1), Timers::Periodic);
    // f = 2 exercises Tempo's slow path under the contended round.
    conformance::<Tempo>(Config::full(5, 2), Timers::Periodic);
}

#[test]
fn atlas_conforms() {
    conformance::<Atlas>(Config::full(5, 1), Timers::None);
    conformance::<Atlas>(Config::full(5, 2), Timers::None);
}

#[test]
fn epaxos_conforms() {
    conformance::<EPaxos>(Config::full(5, 2), Timers::None);
}

#[test]
fn fpaxos_conforms() {
    conformance::<FPaxos>(Config::full(5, 1), Timers::None);
    conformance::<FPaxos>(Config::full(5, 2), Timers::None);
}

#[test]
fn janus_conforms() {
    conformance::<Janus>(Config::full(5, 1), Timers::None);
}

#[test]
fn caesar_conforms() {
    conformance::<Caesar>(Config::full(5, 2), Timers::None);
}

#[test]
fn tempo_commits_under_message_loss() {
    // Tempo's liveness machinery (payload resend, MCommitRequest, leader recovery with
    // ballot retries — Appendix B) must mask a 10% message-loss rate. Short timeouts
    // keep the simulated time small.
    let config = Config::full(3, 1);
    let mut dropped_total = 0;
    for seed in 0..10u64 {
        dropped_total += lossy_commit_round::<Tempo>(
            config,
            |p, shard| {
                Tempo::with_options(
                    p,
                    shard,
                    config,
                    TempoOptions {
                        commit_request_timeout_us: 50_000,
                        recovery_timeout_us: 150_000,
                        ..TempoOptions::default()
                    },
                )
            },
            seed,
        );
    }
    assert!(
        dropped_total > 0,
        "the lossy transport must actually drop messages across the seeds"
    );
}

#[test]
#[ignore = "Atlas models steady-state operation only: it has no retransmission timers, so a lost message stalls the commit (documented baseline simplification, DESIGN.md §4)"]
fn atlas_commits_under_message_loss() {
    let config = Config::full(3, 1);
    lossy_commit_round::<Atlas>(config, |p, s| Atlas::new(p, s, config), 1);
}

#[test]
#[ignore = "EPaxos models steady-state operation only: no retransmission timers (DESIGN.md §4)"]
fn epaxos_commits_under_message_loss() {
    let config = Config::full(5, 2);
    lossy_commit_round::<EPaxos>(config, |p, s| EPaxos::new(p, s, config), 1);
}

#[test]
#[ignore = "FPaxos runs with a fixed leader and no retransmission: a lost accept stalls the slot (DESIGN.md §4)"]
fn fpaxos_commits_under_message_loss() {
    let config = Config::full(3, 1);
    lossy_commit_round::<FPaxos>(config, |p, s| FPaxos::new(p, s, config), 1);
}

#[test]
#[ignore = "Janus* does not implement recovery nor retransmission (documented in the tempo-janus crate docs)"]
fn janus_commits_under_message_loss() {
    let config = Config::full(3, 1);
    lossy_commit_round::<Janus>(config, |p, s| Janus::new(p, s, config), 1);
}

#[test]
#[ignore = "Caesar models steady-state operation only: no retransmission timers (DESIGN.md §4)"]
fn caesar_commits_under_message_loss() {
    let config = Config::full(5, 2);
    lossy_commit_round::<Caesar>(config, |p, s| Caesar::new(p, s, config), 1);
}

#[test]
fn contention_reaches_the_slow_path_where_protocols_have_one() {
    // The conformance rounds above accept fast-path-only runs (Tempo f=1 is designed to
    // never leave it); this test pins protocols whose slow path *must* trigger under
    // concurrent conflicts on one key.
    let slow_of = |config, run: fn(Config) -> u64| run(config);
    fn run_epaxos(config: Config) -> u64 {
        let mut cluster = LocalCluster::<EPaxos>::new(config);
        for p in cluster.process_ids() {
            cluster.submit_no_deliver(p, put(p, 1, 0, p));
        }
        cluster.run_to_quiescence();
        cluster
            .process_ids()
            .iter()
            .map(|p| cluster.process(*p).metrics().slow_paths)
            .sum()
    }
    assert!(
        slow_of(Config::full(5, 2), run_epaxos) > 0,
        "EPaxos must fall back to the slow path under concurrent conflicts"
    );
}

/// Multi-shard (partial-replication) scenario: a two-shard write followed by a
/// two-shard read, both submitted at site 0. The contract: each command executes at
/// *every* replica of *both* accessed shards, write before read everywhere, and each
/// shard's read output observes that shard's write — i.e. the per-shard orders agree
/// on the cross-shard commands (this is the per-key slice of what the
/// `tempo_fault::serializability` checker verifies over whole histories).
fn multi_shard_round<P: Protocol>() {
    let config = Config::new(3, 1, 2);
    let mut cluster = LocalCluster::<P>::new(config);
    cluster.submit(
        0,
        Command::new(
            Rifl::new(1, 1),
            vec![(0, 10, KVOp::Put(1)), (1, 20, KVOp::Put(2))],
            0,
        ),
    );
    cluster.submit(
        0,
        Command::new(
            Rifl::new(1, 2),
            vec![(0, 10, KVOp::Get), (1, 20, KVOp::Get)],
            0,
        ),
    );
    for _ in 0..8 {
        cluster.tick_all(5_000);
    }
    // Processes 0..3 replicate shard 0 (key 10), processes 3..6 shard 1 (key 20).
    for p in cluster.process_ids() {
        let shard = if p < 3 { 0 } else { 1 };
        let (key, written) = if shard == 0 { (10, 1) } else { (20, 2) };
        let executed = cluster.executed(p);
        assert_eq!(
            executed.len(),
            2,
            "{}: both cross-shard commands must execute at process {p} (shard {shard})",
            P::NAME
        );
        assert_eq!(
            (executed[0].rifl, executed[1].rifl),
            (Rifl::new(1, 1), Rifl::new(1, 2)),
            "{}: write-then-read order at process {p}",
            P::NAME
        );
        assert_eq!(
            executed[1].result.outputs,
            vec![(key, Some(written))],
            "{}: the read must observe this shard's write at process {p}",
            P::NAME
        );
    }
}

#[test]
fn tempo_multi_shard_round() {
    multi_shard_round::<Tempo>();
}

#[test]
fn janus_multi_shard_round() {
    multi_shard_round::<Janus>();
}

#[test]
#[ignore = "Atlas is a single-shard commit protocol: per-shard instances collect dependencies within their own shard only, with no cross-shard stability attestation (no MStable analogue), so a two-shard command cannot be ordered across shards (DESIGN.md §4)"]
fn atlas_multi_shard_round() {
    multi_shard_round::<Atlas>();
}

#[test]
#[ignore = "EPaxos shares Atlas's single-shard dependency machinery: no cross-shard execution coordination, so partial replication is out of scope (DESIGN.md §4)"]
fn epaxos_multi_shard_round() {
    multi_shard_round::<EPaxos>();
}

#[test]
#[ignore = "FPaxos is leader-based single-shard SMR: each shard's leader orders its own slot space and there is no mechanism to align slots across shard leaders, so a two-shard command has no joint position (DESIGN.md §4)"]
fn fpaxos_multi_shard_round() {
    multi_shard_round::<FPaxos>();
}

#[test]
#[ignore = "Caesar orders by single-shard timestamps with per-shard dependency tracking: it has no cross-shard stability rule, so a two-shard command cannot wait for its sibling shard (DESIGN.md §4)"]
fn caesar_multi_shard_round() {
    multi_shard_round::<Caesar>();
}

#[test]
fn fpaxos_forwarded_submissions_reach_every_replica() {
    let mut cluster = LocalCluster::<FPaxos>::new(Config::full(5, 1));
    cluster.submit(4, put(1, 1, 0, 1));
    assert_eq!(cluster.process(0).metrics().fast_paths, 1);
    let executed: Vec<ProcessId> = cluster
        .process_ids()
        .into_iter()
        .filter(|p| !cluster.executed(*p).is_empty())
        .collect();
    assert_eq!(executed.len(), 5, "decisions reach every replica");
}
