//! Integration tests spanning crates: every protocol completes the same workloads in the
//! discrete-event simulator, and the headline qualitative comparisons of the paper hold.

use tempo_atlas::{Atlas, EPaxos};
use tempo_caesar::Caesar;
use tempo_core::Tempo;
use tempo_fpaxos::FPaxos;
use tempo_janus::Janus;
use tempo_kernel::Config;
use tempo_planet::Planet;
use tempo_sim::{run, CpuModel, RunReport, SimOpts};
use tempo_workload::{ConflictWorkload, YcsbT};

fn opts() -> SimOpts {
    SimOpts {
        clients_per_site: 4,
        commands_per_client: 5,
        ..SimOpts::default()
    }
}

fn full<P: tempo_kernel::protocol::Protocol>(f: usize) -> RunReport {
    run::<P, _>(
        Config::full(5, f),
        Planet::ec2(),
        opts(),
        ConflictWorkload::new(0.02, 100, 3),
    )
}

#[test]
fn every_full_replication_protocol_completes_the_microbenchmark() {
    let expected = 5 * 4 * 5;
    for report in [
        full::<Tempo>(1),
        full::<Tempo>(2),
        full::<Atlas>(1),
        full::<Atlas>(2),
        full::<EPaxos>(2),
        full::<FPaxos>(1),
        full::<Caesar>(2),
    ] {
        assert!(!report.stalled, "{} stalled", report.protocol);
        assert_eq!(report.completed, expected, "{} incomplete", report.protocol);
        assert!(
            report.mean_latency_ms() > 30.0,
            "{} latency unrealistically low",
            report.protocol
        );
    }
}

#[test]
fn partial_replication_protocols_complete_ycsbt() {
    let config = Config::new(3, 1, 4);
    let planet = Planet::ec2_three_regions();
    for (name, report) in [
        (
            "Tempo",
            run::<Tempo, _>(
                config,
                planet.clone(),
                opts(),
                YcsbT::new(4, 10_000, 0.7, 0.5, 3),
            ),
        ),
        (
            "Janus*",
            run::<Janus, _>(
                config,
                planet.clone(),
                opts(),
                YcsbT::new(4, 10_000, 0.7, 0.5, 3),
            ),
        ),
    ] {
        assert!(!report.stalled, "{name} stalled");
        assert_eq!(report.completed, 3 * 4 * 5, "{name} incomplete");
    }
}

#[test]
fn tempo_latency_is_insensitive_to_the_conflict_rate() {
    // §3.3 / §6.3: Tempo does not distinguish reads from writes and its performance is
    // essentially unaffected by the conflict rate.
    let low = run::<Tempo, _>(
        Config::full(5, 1),
        Planet::ec2(),
        opts(),
        ConflictWorkload::new(0.02, 100, 3),
    );
    let high = run::<Tempo, _>(
        Config::full(5, 1),
        Planet::ec2(),
        opts(),
        ConflictWorkload::new(0.5, 100, 3),
    );
    assert!(!low.stalled && !high.stalled);
    let ratio = high.mean_latency_ms() / low.mean_latency_ms();
    assert!(
        ratio < 1.5,
        "Tempo latency should be stable under contention (ratio {ratio:.2})"
    );
}

#[test]
fn fpaxos_leader_is_a_throughput_bottleneck_under_cpu_model() {
    // Figure 7's qualitative shape: with the CPU cost model and enough load to saturate,
    // the leader-based protocol (whose leader must receive and broadcast every 4 KB
    // command) caps below the leaderless one.
    let cpu_opts = SimOpts {
        clients_per_site: 128,
        commands_per_client: 10,
        cpu: Some(CpuModel {
            per_message_us: 100.0,
            per_kilobyte_us: 25.0,
            per_execution_us: 20.0,
        }),
        ..SimOpts::default()
    };
    let tempo = run::<Tempo, _>(
        Config::full(5, 1),
        Planet::ec2(),
        cpu_opts.clone(),
        ConflictWorkload::new(0.02, 4096, 3),
    );
    let fpaxos = run::<FPaxos, _>(
        Config::full(5, 1),
        Planet::ec2(),
        cpu_opts.clone(),
        ConflictWorkload::new(0.02, 4096, 3),
    );
    assert!(!tempo.stalled && !fpaxos.stalled);
    assert!(
        tempo.throughput_kops() > fpaxos.throughput_kops(),
        "Tempo ({:.1} kops/s) should out-scale FPaxos ({:.1} kops/s)",
        tempo.throughput_kops(),
        fpaxos.throughput_kops()
    );
}

#[test]
fn tempo_fast_path_ratio_is_high_at_low_conflict() {
    let report = full::<Tempo>(1);
    assert!(
        report.fast_path_ratio() > 0.95,
        "with f = 1 Tempo should always take the fast path (got {:.2})",
        report.fast_path_ratio()
    );
}
